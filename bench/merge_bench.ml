(* Merge fast path: batched run release vs per-message merging, and the
   @merge-smoke equivalence gate.

   [run] re-runs PR 9's merge-bound cliff (the selfmaint star workload,
   seed 17, 2ms merge cost) per merge_batch policy. The bench pins the
   merge as the binding server — view-manager compute is dropped to 1ms
   so the 5 merge messages per update (1 REL + 4 ALs) saturate first,
   where the seed sweep had the managers' own 10ms compute co-saturating
   next to the merge. Per-message merging then cliffs near 100
   updates/s; the fused fast path serves the whole queued backlog per
   service event and releases each ready run as one batched warehouse
   transaction, so saturation moves to the next server in line. Writes
   BENCH_merge.json; headline [merge_saturation_speedup] is the ratio of
   the highest rate each policy sustains below the staleness threshold,
   and must be >= 2.

   [mergesmoke] backs the @merge-smoke alias: every pinned paper
   scenario (plus one generated workload) runs with the fast path on
   ([Coalesced], the default) and off ([Per_message]) at 1 and 4
   domains, and the traces must be byte-identical — commits, action
   counts, the simulated completion instant, final view contents, every
   served read and the consistency verdict. The [Fused] policy is
   exempt from trace identity by design (it is the behavioral knob); the
   smoke instead requires every fused run to pass
   {!Consistency.Checker.certify_fused} and stay strongly consistent.
   Exits nonzero on any violation. *)

open Whips

let quick () = !Micro.quick

(* Staleness above this means the merge backlog, not the pipeline floor,
   dominates: the flat region of the seed sweep sits near 0.04s and the
   first saturated point at 0.38s, so 0.1s cleanly separates them. *)
let saturation_threshold = 0.1

let mean_staleness (r : System.result) =
  Sim.Stats.Summary.mean r.metrics.Metrics.staleness

let p95_staleness (r : System.result) =
  Sim.Stats.Summary.percentile r.metrics.Metrics.staleness 95.0

let cliff_latencies =
  { System.default_latencies with merge = 0.002; compute = 0.001 }

let cliff_run scen ~batch ~rate =
  System.run
    { (System.default scen) with
      vm_kind = System.Selfmaint_vm;
      merge_batch = batch;
      arrival = System.Poisson rate;
      latencies = cliff_latencies;
      seed = 17 }

(* Highest swept rate the policy sustains below the threshold before its
   first saturated point (rates ascend; 0.0 when even the lowest rate is
   saturated). *)
let saturation_rate cells =
  List.fold_left
    (fun acc (rate, mean) ->
      match acc with
      | `Sat r -> `Sat r
      | `Ok _ when mean > saturation_threshold -> `Sat acc
      | `Ok _ -> `Ok rate)
    (`Ok 0.0) cells
  |> function
  | `Ok r | `Sat (`Ok r) -> r
  | `Sat (`Sat _) -> 0.0

type cell = {
  rate : float;
  off_mean : float;
  off_p95 : float;
  fused_mean : float;
  fused_p95 : float;
  fused_batch_mean : float;
  fused_batch_max : float;
  fused_commits : int;
}

let run () =
  Tables.section
    "merge fast path: per-message vs fused run release (update-rate sweep)";
  let txns = if quick () then 60 else 150 in
  let scen = Selfmaint_bench.star_scenario ~n_views:4 ~txns ~seed:17 in
  let rates =
    if quick () then [ 40.0; 160.0; 640.0 ]
    else [ 20.0; 40.0; 80.0; 160.0; 320.0; 640.0; 1280.0 ]
  in
  let cells =
    List.map
      (fun rate ->
        let off = cliff_run scen ~batch:System.Per_message ~rate in
        let fused = cliff_run scen ~batch:System.Fused ~rate in
        { rate;
          off_mean = mean_staleness off;
          off_p95 = p95_staleness off;
          fused_mean = mean_staleness fused;
          fused_p95 = p95_staleness fused;
          fused_batch_mean =
            Sim.Stats.Summary.mean fused.metrics.Metrics.merge_batch_size;
          fused_batch_max =
            Sim.Stats.Summary.max fused.metrics.Metrics.merge_batch_size;
          fused_commits = Atomic.get fused.metrics.Metrics.commits })
      rates
  in
  Tables.print
    ~title:
      "mean / p95 staleness; merge 2ms per message, fused serves the \
       backlog per service event"
    ~header:
      [ "rate/s"; "off mean"; "off p95"; "fused mean"; "fused p95";
        "batch mean"; "batch max"; "fused commits" ]
    (List.map
       (fun c ->
         [ string_of_int (int_of_float c.rate);
           Tables.ms c.off_mean; Tables.ms c.off_p95;
           Tables.ms c.fused_mean; Tables.ms c.fused_p95;
           Tables.f1 c.fused_batch_mean; Tables.f1 c.fused_batch_max;
           string_of_int c.fused_commits ])
       cells);
  (* The default fast path must not move a single number: same sweep
     point under Coalesced vs Per_message, full trace compared. *)
  let id_rate = List.nth rates (List.length rates / 2) in
  let id_off = cliff_run scen ~batch:System.Per_message ~rate:id_rate in
  let id_on = cliff_run scen ~batch:System.Coalesced ~rate:id_rate in
  let identical =
    Parallel_bench.signatures_equal
      (Parallel_bench.signature id_on)
      (Parallel_bench.signature id_off)
  in
  if not identical then begin
    Printf.printf
      "merge bench FAILED: Coalesced diverged from Per_message at %g/s\n%!"
      id_rate;
    exit 1
  end;
  Printf.printf
    "identity probe at %g/s: Coalesced trace == Per_message trace; \
     coalesced %d->%d actions (cancel ratio %.2f, %d fallbacks)\n"
    id_rate
    (Atomic.get id_on.metrics.Metrics.coalesced_in)
    (Atomic.get id_on.metrics.Metrics.coalesced_out)
    (Metrics.coalesce_cancel_ratio id_on.metrics)
    (Atomic.get id_on.metrics.Metrics.coalesce_fallbacks);
  let off_sat =
    saturation_rate (List.map (fun c -> (c.rate, c.off_mean)) cells)
  and fused_sat =
    saturation_rate (List.map (fun c -> (c.rate, c.fused_mean)) cells)
  in
  let speedup = if off_sat > 0.0 then fused_sat /. off_sat else 0.0 in
  Printf.printf
    "saturation (mean staleness <= %gs): per-message %g/s, fused %g/s — \
     %.1fx further\n"
    saturation_threshold off_sat fused_sat speedup;
  Printf.printf
    "expected shape: per-message merging cliffs once 5 messages x 2ms per \
     update exceed the\nservice rate (~100/s); the fused path charges one \
     service sample per backlog and commits\neach ready run as one BWT, so \
     staleness stays near the pipeline floor until the next\nserver binds. \
     Batch sizes grow with offered load — the fast path is self-\n\
     scheduling, not a tuned constant.\n";
  let oc = open_out "BENCH_merge.json" in
  let cell_json c =
    Printf.sprintf
      "    { \"rate\": %g, \"off_mean_staleness_s\": %.6f, \
       \"off_p95_staleness_s\": %.6f, \"fused_mean_staleness_s\": %.6f, \
       \"fused_p95_staleness_s\": %.6f, \"fused_batch_mean\": %.2f, \
       \"fused_batch_max\": %g, \"fused_commits\": %d }"
      c.rate c.off_mean c.off_p95 c.fused_mean c.fused_p95 c.fused_batch_mean
      c.fused_batch_max c.fused_commits
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe merge\",\n\
    \  \"quick\": %b,\n\
    \  \"note\": \"merge fast path: per-message merging vs fused run \
     release on the PR 9 star cliff (merge 2ms, compute 1ms, seed 17); \
     saturation = highest swept rate with mean staleness <= %gs\",\n\
    \  \"sweep\": [\n%s\n  ],\n\
    \  \"saturation_rate_off\": %g,\n\
    \  \"saturation_rate_fused\": %g,\n\
    \  \"merge_saturation_speedup\": %.4f,\n\
    \  \"coalesce_cancel_ratio\": %.4f,\n\
    \  \"coalesce_fallbacks\": %d\n\
     }\n"
    (quick ()) saturation_threshold
    (String.concat ",\n" (List.map cell_json cells))
    off_sat fused_sat speedup
    (Metrics.coalesce_cancel_ratio id_on.metrics)
    (Atomic.get id_on.metrics.Metrics.coalesce_fallbacks);
  close_out oc;
  Printf.printf "wrote BENCH_merge.json\n%!"

(* ---- @merge-smoke ---- *)

let trace ~batch ~domains scen =
  System.run
    { (System.default scen) with
      merge_batch = batch;
      arrival = System.Uniform 0.02;
      reads = Some System.default_reads;
      parallel =
        { Parallel.Config.domains; shards = domains; model_overlap = false };
      seed = 9 }

let check scen =
  let results =
    List.map
      (fun domains ->
        let on = trace ~batch:System.Coalesced ~domains scen
        and off = trace ~batch:System.Per_message ~domains scen in
        let ok =
          Parallel_bench.signatures_equal
            (Parallel_bench.signature on)
            (Parallel_bench.signature off)
          && Parallel_bench.read_signature on
             = Parallel_bench.read_signature off
          && System.verdict on = System.verdict off
        in
        Printf.printf "merge-smoke %-14s domains %d: %s\n%!"
          scen.Workload.Scenarios.name domains
          (if ok then "identical" else "DIVERGED");
        ok)
      [ 1; 4 ]
  in
  (* The fused policy is the behavioral knob: no trace identity, but the
     recorded batches must re-check exactly and the run must stay
     strongly consistent (the paper's batching level). Reads stay off so
     the verdict sees Keep_all history alone. *)
  let fused =
    System.run
      { (System.default scen) with
        merge_batch = System.Fused;
        arrival = System.Uniform 0.02;
        seed = 9 }
  in
  let cert = System.fused_certificate fused in
  let v = System.verdict fused in
  let fused_ok =
    Consistency.Checker.certified_fused cert
    && Consistency.Checker.at_least Consistency.Checker.Strong v
  in
  Printf.printf "merge-smoke %-14s fused: %s (%s, %s)\n%!"
    scen.Workload.Scenarios.name
    (if fused_ok then "certified" else "FAILED")
    cert.Consistency.Checker.fc_detail
    (Consistency.Checker.level_name (Consistency.Checker.level v));
  List.for_all Fun.id results && fused_ok

let mergesmoke () =
  Tables.section
    "merge-smoke: the coalesced fast path must be trace-identical to \
     per-message merging; fused runs must certify";
  let generated =
    Workload.Generator.generate
      { Workload.Generator.default with
        seed = 47;
        n_relations = 4;
        n_views = 3;
        n_transactions = 12;
        initial_tuples = 6 }
  in
  let scens = Workload.Scenarios.all @ [ generated ] in
  let results = List.map check scens in
  if List.for_all Fun.id results then
    Printf.printf
      "merge-smoke OK: %d scenarios identical on/off, all fused runs \
       certified\n%!"
      (List.length scens)
  else begin
    Printf.printf
      "merge-smoke FAILED: fast path diverged or a fused run failed \
       certification\n%!";
    exit 1
  end
