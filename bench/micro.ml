(* Bechamel micro-benchmarks: one [Test.make] per kernel underlying the
   experiment tables (VUT bookkeeping, painting-algorithm event handling,
   incremental delta computation, bag operations, the consistency oracle).
   Estimated via OLS on monotonic-clock samples. *)

open Bechamel
open Relational

(* Set by `bench/main.exe -quick`: shrink the measurement quota so the
   @bench-smoke alias exercises every kernel in a few seconds. *)
let quick = ref false

let int_schema names = Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)

let random_bag seed n =
  let rng = Sim.Rng.create seed in
  let rec loop i acc =
    if i = 0 then acc
    else
      loop (i - 1)
        (Bag.add (Tuple.ints [ Sim.Rng.int rng 50; Sim.Rng.int rng 50 ]) acc)
  in
  loop n Bag.empty

(* Like [random_bag] but with values drawn from [0, range): at range ~ 2n
   tuples are mostly distinct, so an n-row relation really holds n rows
   rather than 2500 heavy-multiplicity ones. *)
let random_bag_wide seed n ~range =
  let rng = Sim.Rng.create seed in
  let rec loop i acc =
    if i = 0 then acc
    else
      loop (i - 1)
        (Bag.add (Tuple.ints [ Sim.Rng.int rng range; Sim.Rng.int rng range ]) acc)
  in
  loop n Bag.empty

let join_db n =
  let rs = int_schema [ "A"; "B" ] and ss = int_schema [ "B"; "C" ] in
  Database.of_list
    [ ("R", Relation.with_contents (Relation.create rs) (random_bag 1 n));
      ("S", Relation.with_contents (Relation.create ss) (random_bag 2 n)) ]

let join_db_wide n ~range =
  let rs = int_schema [ "A"; "B" ] and ss = int_schema [ "B"; "C" ] in
  Database.of_list
    [ ("R",
       Relation.with_contents (Relation.create rs)
         (random_bag_wide 1 n ~range));
      ("S",
       Relation.with_contents (Relation.create ss)
         (random_bag_wide 2 n ~range)) ]

let test_vut_lifecycle =
  Test.make ~name:"vut: 64-row add/color/purge lifecycle"
    (Staged.stage (fun () ->
         let views = [ "V1"; "V2"; "V3"; "V4" ] in
         let vut = Mvc.Vut.create ~views in
         for row = 1 to 64 do
           Mvc.Vut.add_row vut ~row ~rel:views
         done;
         for row = 1 to 64 do
           List.iter
             (fun view ->
               Mvc.Vut.set_color vut ~row ~view Mvc.Vut.Gray)
             views;
           Mvc.Vut.purge_row vut row
         done))

let test_vut_next_red =
  Test.make ~name:"vut: next_red scan over 256 live rows"
    (Staged.stage
       (let vut = Mvc.Vut.create ~views:[ "V" ] in
        for row = 1 to 256 do
          Mvc.Vut.add_row vut ~row ~rel:[ "V" ]
        done;
        Mvc.Vut.set_color vut ~row:256 ~view:"V" Mvc.Vut.Red;
        fun () -> ignore (Mvc.Vut.next_red vut ~row:1 ~view:"V")))

let drive_spa n_rows =
  let views = [ "V1"; "V2"; "V3" ] in
  let spa = Mvc.Spa.create ~views ~emit:(fun _ -> ()) () in
  for row = 1 to n_rows do
    Mvc.Spa.receive_rel spa ~row ~rel:views;
    List.iter
      (fun view ->
        Mvc.Spa.receive_action_list spa
          (Query.Action_list.delta ~view ~state:row Signed_bag.zero))
      views
  done

let test_spa =
  Test.make ~name:"spa: 64 updates x 3 views end to end"
    (Staged.stage (fun () -> drive_spa 64))

let drive_pa n_rows =
  let views = [ "V1"; "V2"; "V3" ] in
  let pa = Mvc.Pa.create ~views ~emit:(fun _ -> ()) () in
  for row = 1 to n_rows do
    Mvc.Pa.receive_rel pa ~row ~rel:views
  done;
  (* Each manager sends batched lists covering four rows at a time. *)
  List.iter
    (fun view ->
      let row = ref 4 in
      while !row <= n_rows do
        Mvc.Pa.receive_action_list pa
          (Query.Action_list.delta ~view ~state:!row Signed_bag.zero);
        row := !row + 4
      done)
    views

let test_pa =
  Test.make ~name:"pa: 64 updates x 3 views, batches of 4"
    (Staged.stage (fun () -> drive_pa 64))

let test_delta_join =
  Test.make ~name:"delta: single insert into 512-tuple join"
    (Staged.stage
       (let db = join_db 512 in
        let expr = Query.Algebra.(join (base "R") (base "S")) in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 7; 7 ]))
        in
        fun () -> ignore (Query.Delta.eval ~pre:db changes expr)))

let test_eval_join =
  Test.make ~name:"eval: full 512x512 natural join"
    (Staged.stage
       (let db = join_db 512 in
        let expr = Query.Algebra.(join (base "R") (base "S")) in
        fun () -> ignore (Query.Eval.eval_bag db expr)))

let test_bag_union =
  Test.make ~name:"bag: union of two 1024-tuple bags"
    (Staged.stage
       (let a = random_bag 3 1024 and b = random_bag 4 1024 in
        fun () -> ignore (Bag.union a b)))

let test_oracle =
  Test.make ~name:"oracle: verdict for a 20-txn SPA run"
    (Staged.stage
       (let scen =
          Workload.Generator.generate
            { Workload.Generator.default with seed = 5; n_transactions = 20 }
        in
        let result = Whips.System.run (Whips.System.default scen) in
        fun () -> ignore (Whips.System.verdict result)))

let test_system =
  Test.make ~name:"system: full 20-txn simulated run (SPA)"
    (Staged.stage
       (let scen =
          Workload.Generator.generate
            { Workload.Generator.default with seed = 5; n_transactions = 20 }
        in
        fun () -> ignore (Whips.System.run (Whips.System.default scen))))

let test_delta_pushdown =
  Test.make ~name:"delta: selective view, optimized vs raw definition"
    (Staged.stage
       (let db = join_db 512 in
        let raw =
          Query.Algebra.(
            select
              (Query.Pred.eq "A" (Value.Int 3))
              (join (base "R") (base "S")))
        in
        let optimized =
          Query.Optimize.optimize
            ~schemas:(fun n -> Database.schema db n)
            raw
        in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 3; 3 ]))
        in
        fun () ->
          ignore (Query.Delta.eval ~pre:db changes raw);
          ignore (Query.Delta.eval ~pre:db changes optimized)))

let test_delta_pushdown_only =
  Test.make ~name:"delta: optimized definition alone"
    (Staged.stage
       (let db = join_db 512 in
        let optimized =
          Query.Optimize.optimize
            ~schemas:(fun n -> Database.schema db n)
            Query.Algebra.(
              select
                (Query.Pred.eq "A" (Value.Int 3))
                (join (base "R") (base "S")))
        in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 3; 3 ]))
        in
        fun () -> ignore (Query.Delta.eval ~pre:db changes optimized)))

(* Ablation for the auxiliary-view trade (references [12]/[8]): the delta
   of V = R |><| S |><| T computed directly over base data vs through
   materialized RS and ST. *)
let three_way_db n =
  let rs = int_schema [ "A"; "B" ]
  and ss = int_schema [ "B"; "C" ]
  and ts = int_schema [ "C"; "D" ] in
  Database.of_list
    [ ("R", Relation.with_contents (Relation.create rs) (random_bag 11 n));
      ("S", Relation.with_contents (Relation.create ss) (random_bag 12 n));
      ("T", Relation.with_contents (Relation.create ts) (random_bag 13 n)) ]

let test_delta_direct_3way =
  Test.make ~name:"delta: V=R|><|S|><|T directly over base data (256 tuples)"
    (Staged.stage
       (let db = three_way_db 256 in
        let expr = Query.Algebra.(join_all [ base "R"; base "S"; base "T" ]) in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 7; 7 ]))
        in
        fun () -> ignore (Query.Delta.eval ~pre:db changes expr)))

let test_delta_via_aux =
  Test.make ~name:"delta: same V through materialized RS and ST"
    (Staged.stage
       (let db = three_way_db 256 in
        let rs_def = Query.Algebra.(join (base "R") (base "S")) in
        let st_def = Query.Algebra.(join (base "S") (base "T")) in
        let aux_db =
          Database.of_list
            [ ("RS", Query.Eval.eval db rs_def);
              ("ST", Query.Eval.eval db st_def) ]
        in
        let over_aux = Query.Algebra.(join (base "RS") (base "ST")) in
        let changes =
          Query.Delta.of_update (Update.insert "S" (Tuple.ints [ 7; 7 ]))
        in
        fun () ->
          let aux_changes =
            Query.Delta.changes_of_list
              [ ("RS", Query.Delta.eval ~pre:db changes rs_def);
                ("ST", Query.Delta.eval ~pre:db changes st_def) ]
          in
          ignore (Query.Delta.eval ~pre:aux_db aux_changes over_aux)))

(* Naive-vs-hash kernel ablation (the compiled positional hash kernel
   against the interpreted nested-loop reference). The headline pair is the
   join-delta kernel at 10k-row relations: a 32-update source batch against
   V = R |><| S, i.e. the work a batching view manager does per action
   list. The naive rule joins the 10k-row pre-state against the 32-row
   delta pairwise (320k Tuple.join calls, each re-resolving the shared
   attribute by name); the hash rule builds on the 32-row side and probes
   the 10k side positionally. *)

let delta_kernel_setup n =
  let range = 2 * n in
  let db = join_db_wide n ~range in
  let expr = Query.Algebra.(join (base "R") (base "S")) in
  let rng = Sim.Rng.create 42 in
  let updates =
    List.init 32 (fun _ ->
        Update.insert "S"
          (Tuple.ints [ Sim.Rng.int rng range; Sim.Rng.int rng range ]))
  in
  let changes =
    Query.Delta.changes_of_list
      (List.map (fun (u : Update.t) -> (u.relation, Update.to_delta u)) updates)
  in
  (db, expr, changes)

(* Force the columnar switch around one measured thunk: the historical
   "hash" kernels keep measuring the boxed positional path they were
   named for, with the columnar path measured by its own kernels. *)
let with_columnar flag f =
  let saved = !Columnar.enabled in
  Columnar.enabled := flag;
  Fun.protect ~finally:(fun () -> Columnar.enabled := saved) f

let test_delta_join_10k_hash =
  Test.make ~name:"kernel:delta-join-10k/hash"
    (Staged.stage
       (let db, expr, changes = delta_kernel_setup 10_000 in
        fun () ->
          with_columnar false (fun () ->
              ignore (Query.Delta.eval ~pre:db changes expr))))

let test_delta_join_10k_naive =
  Test.make ~name:"kernel:delta-join-10k/naive"
    (Staged.stage
       (let db, expr, changes = delta_kernel_setup 10_000 in
        fun () -> ignore (Query.Delta.eval ~naive:true ~pre:db changes expr)))

let test_eval_join_1k_hash =
  Test.make ~name:"kernel:eval-join-1k/hash"
    (Staged.stage
       (let db = join_db_wide 1000 ~range:1000 in
        let expr = Query.Algebra.(join (base "R") (base "S")) in
        fun () ->
          with_columnar false (fun () -> ignore (Query.Eval.eval_bag db expr))))

let test_eval_join_1k_naive =
  Test.make ~name:"kernel:eval-join-1k/naive"
    (Staged.stage
       (let db = join_db_wide 1000 ~range:1000 in
        let expr = Query.Algebra.(join (base "R") (base "S")) in
        fun () -> ignore (Query.Eval.eval_bag ~naive:true db expr)))

(* The headline kernel: steady-state incremental maintenance of
   V = R |><| S over 10k-row relations under a 32-update batch, on the
   columnar path. The first evaluation warms the relations' memoized
   chunks and int-keyed indexes (the setup does that eagerly); each
   measured run then probes the cached pre-state index with the 32
   delta rows — O(|delta|) — instead of scanning and re-indexing the
   10k-row side as the boxed kernel does. *)
let test_maintain_10k_columnar =
  Test.make ~name:"kernel:maintain-view-10k/columnar"
    (Staged.stage
       (let db, expr, changes = delta_kernel_setup 10_000 in
        with_columnar true (fun () ->
            ignore (Query.Delta.eval ~pre:db changes expr));
        fun () ->
          with_columnar true (fun () ->
              ignore (Query.Delta.eval ~pre:db changes expr))))

let test_maintain_10k_boxed =
  Test.make ~name:"kernel:maintain-view-10k/boxed"
    (Staged.stage
       (let db, expr, changes = delta_kernel_setup 10_000 in
        fun () ->
          with_columnar false (fun () ->
              ignore (Query.Delta.eval ~pre:db changes expr))))

let test_eval_join_1k_columnar =
  Test.make ~name:"kernel:eval-join-1k/columnar"
    (Staged.stage
       (let db = join_db_wide 1000 ~range:1000 in
        let expr = Query.Algebra.(join (base "R") (base "S")) in
        with_columnar true (fun () -> ignore (Query.Eval.eval_bag db expr));
        fun () ->
          with_columnar true (fun () -> ignore (Query.Eval.eval_bag db expr))))

let test_vut_guards_indexed =
  Test.make ~name:"kernel:vut-next-red-1k/hash"
    (Staged.stage
       (let vut = Mvc.Vut.create ~views:[ "V" ] in
        for row = 1 to 1024 do
          Mvc.Vut.add_row vut ~row ~rel:[ "V" ]
        done;
        Mvc.Vut.set_color vut ~row:1024 ~view:"V" Mvc.Vut.Red;
        fun () -> ignore (Mvc.Vut.next_red vut ~row:1 ~view:"V")))

let test_vut_guards_scan =
  Test.make ~name:"kernel:vut-next-red-1k/naive"
    (Staged.stage
       (let vut = Mvc.Vut.create ~views:[ "V" ] in
        for row = 1 to 1024 do
          Mvc.Vut.add_row vut ~row ~rel:[ "V" ]
        done;
        Mvc.Vut.set_color vut ~row:1024 ~view:"V" Mvc.Vut.Red;
        fun () ->
          (* The pre-index implementation: linear scan for the first red
             row after 1 (earlier_with is the retained scan path). *)
          ignore
            (Mvc.Vut.earlier_with vut ~row:1025 ~view:"V" (fun e ->
                 e.Mvc.Vut.color = Mvc.Vut.Red))))

(* Ablation pairs reported in BENCH_kernel.json: (kernel, slow, fast) —
   naive vs hash for the historical pairs, boxed vs columnar for the
   columnar kernels. *)
let ablation_pairs =
  [ ( "maintain-view-10k",
      "kernel:maintain-view-10k/boxed",
      "kernel:maintain-view-10k/columnar" );
    ( "eval-join-1k-columnar",
      "kernel:eval-join-1k/hash",
      "kernel:eval-join-1k/columnar" );
    ("delta-join-10k", "kernel:delta-join-10k/naive", "kernel:delta-join-10k/hash");
    ("eval-join-1k", "kernel:eval-join-1k/naive", "kernel:eval-join-1k/hash");
    ("vut-next-red-1k", "kernel:vut-next-red-1k/naive", "kernel:vut-next-red-1k/hash") ]

(* [test_maintain_10k_columnar] leads: its estimate is the
   first_kernel_ns_per_run headline that BENCH_summary.json and the
   regression gate track. *)
let tests =
  [ test_maintain_10k_columnar; test_maintain_10k_boxed;
    test_eval_join_1k_columnar; test_vut_lifecycle; test_vut_next_red;
    test_spa; test_pa; test_delta_join;
    test_eval_join; test_bag_union; test_delta_pushdown;
    test_delta_pushdown_only; test_delta_direct_3way; test_delta_via_aux;
    test_delta_join_10k_hash; test_delta_join_10k_naive;
    test_eval_join_1k_hash; test_eval_join_1k_naive; test_vut_guards_indexed;
    test_vut_guards_scan; test_oracle; test_system ]

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Machine-readable perf baseline (format documented in EXPERIMENTS.md):
   every kernel's ns/run plus the naive-vs-hash ablation pairs, so future
   PRs can diff the trajectory instead of eyeballing table output. *)
let write_json ~path estimates =
  let oc = open_out path in
  let kernels =
    List.map
      (fun (name, ns) ->
        Printf.sprintf "    { \"name\": \"%s\", \"ns_per_run\": %.1f }"
          (json_escape name) ns)
      estimates
  in
  let ablations =
    List.filter_map
      (fun (kernel, naive_name, hash_name) ->
        match (List.assoc_opt naive_name estimates,
               List.assoc_opt hash_name estimates)
        with
        | Some naive_ns, Some hash_ns when hash_ns > 0.0 ->
          Some
            (Printf.sprintf
               "    { \"kernel\": \"%s\", \"naive_ns\": %.1f, \"hash_ns\": \
                %.1f, \"speedup\": %.2f }"
               (json_escape kernel) naive_ns hash_ns (naive_ns /. hash_ns))
        | _ -> None)
      ablation_pairs
  in
  let headline =
    match estimates with (name, _) :: _ -> name | [] -> ""
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe micro\",\n\
    \  \"unit\": \"ns_per_run\",\n\
    \  \"quick\": %b,\n\
    \  \"headline_kernel\": \"%s\",\n\
    \  \"kernels\": [\n%s\n  ],\n\
    \  \"ablations\": [\n%s\n  ]\n\
     }\n"
    !quick (json_escape headline)
    (String.concat ",\n" kernels)
    (String.concat ",\n" ablations);
  close_out oc

let run () =
  Tables.section "micro-benchmarks (Bechamel, ns per run, OLS estimate)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let quota = if !quick then 0.05 else 0.25 in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let estimates =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> (name, e) :: acc
            | Some _ | None -> acc)
          analyzed [])
      tests
  in
  let rows =
    List.map
      (fun (name, e) -> [ name; Printf.sprintf "%.0f ns" e ])
      estimates
  in
  Tables.print ~title:"kernel costs" ~header:[ "benchmark"; "time/run" ] rows;
  let speedups =
    List.filter_map
      (fun (kernel, naive_name, hash_name) ->
        match (List.assoc_opt naive_name estimates,
               List.assoc_opt hash_name estimates)
        with
        | Some naive_ns, Some hash_ns when hash_ns > 0.0 ->
          Some
            [ kernel; Printf.sprintf "%.0f ns" naive_ns;
              Printf.sprintf "%.0f ns" hash_ns;
              Printf.sprintf "%.1fx" (naive_ns /. hash_ns) ]
        | _ -> None)
      ablation_pairs
  in
  Tables.print ~title:"naive vs hash kernel ablation"
    ~header:[ "kernel"; "naive"; "hash"; "speedup" ]
    speedups;
  write_json ~path:"BENCH_kernel.json" estimates;
  Printf.printf "wrote BENCH_kernel.json\n%!"
