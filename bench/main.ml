(* Benchmark harness entry point. With no arguments every experiment runs
   in DESIGN.md order (paper traces, figures, performance studies, micro);
   individual experiments can be selected by name. *)

let experiments =
  [ ("table1", Paper_traces.table1);
    ("example2", Paper_traces.example2);
    ("example3", Paper_traces.example3);
    ("example4", Paper_traces.example4);
    ("example5", Paper_traces.example5);
    ("figure1", Experiments.figure1);
    ("figure2", Experiments.figure2);
    ("figure3", Experiments.figure3);
    ("freshness", Experiments.freshness);
    ("bottleneck", Experiments.bottleneck);
    ("batching", Experiments.batching);
    ("partition", Experiments.partition);
    ("multisource", Experiments.multisource);
    ("promptness", Experiments.promptness);
    ("relrouting", Experiments.relrouting);
    ("aggregates", Experiments.aggregates);
    ("optimizer", Experiments.optimizer);
    ("soak", Experiments.soak);
    ("resilience", Resilience.run);
    ("faultsoak", Resilience.faultsoak);
    ("crashsmoke", Resilience.crashsmoke);
    ("serve", Serving.run);
    ("servesmoke", Serving.servesmoke);
    ("parallel", Parallel_bench.run);
    ("parsmoke", Parallel_bench.parsmoke);
    ("shared", Shared_bench.run);
    ("sharedsmoke", Shared_bench.sharedsmoke);
    ("colsmoke", Colsmoke.run);
    ("dist", Dist_bench.run);
    ("distsmoke", Dist_bench.distsmoke);
    ("selfmaint", Selfmaint_bench.run);
    ("selfmaintsmoke", Selfmaint_bench.selfmaintsmoke);
    ("merge", Merge_bench.run);
    ("mergesmoke", Merge_bench.mergesmoke);
    ("summary", Summary.run);
    ("micro", Micro.run) ]

let usage () =
  Printf.printf
    "usage: main.exe [-quick] [--check-regression] [experiment ...]\n\
     available experiments:\n";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, args = List.partition (fun a -> String.length a > 0 && a.[0] = '-') args in
  if List.mem "-quick" flags || List.mem "--quick" flags then Micro.quick := true;
  if List.mem "--check-regression" flags then Summary.check_regression := true;
  if List.mem "--help" flags || List.mem "-h" flags then usage ()
  else
    match args with
    | [] -> List.iter (fun (_, f) -> f ()) experiments
    | args ->
      let run name =
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.printf "unknown experiment: %s\n" name;
          usage ();
          exit 1
      in
      List.iter run args
