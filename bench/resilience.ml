(* R: resilience experiments. What does the reliability layer cost on a
   clean network, what does it buy on a lossy one, and how fast does a
   crashed view manager catch back up? Results land in
   BENCH_resilience.json (format documented in EXPERIMENTS.md) so future
   PRs can diff the trajectory.

   [faultsoak] is the fast deterministic variant wired to the
   `@soak-smoke` dune alias: a fixed-seed matrix of random fault plans
   that exits nonzero if any acked run gets stuck or misses the
   consistency level its configuration guarantees. *)

open Whips

let verdict_level (r : System.result) =
  Consistency.Checker.(level_name (level (System.verdict r)))

let mean_staleness (r : System.result) =
  Sim.Stats.Summary.mean r.metrics.Metrics.staleness

let scenario ~seed =
  Workload.Generator.generate
    { Workload.Generator.default with
      seed;
      n_relations = 4;
      n_views = 3;
      n_transactions = 30;
      initial_tuples = 5 }

(* Loss plan scaled by a single knob: at rate [p] every channel drops a
   message with probability p, duplicates with p/2, and spikes latency
   with p/2. *)
let plan_for rate =
  if rate <= 0.0 then Workload.Fault_plan.empty
  else
    Workload.Fault_plan.random ~drop:rate ~duplicate:(rate /. 2.0)
      ~delay:(rate /. 2.0) ~delay_by:0.05 "*"

let cfg_for ~rate ~reliability ~seed scen =
  { (System.default scen) with
    vm_kind = System.Complete_vm;
    fault_plan = plan_for rate;
    reliability;
    arrival = System.Poisson 60.0;
    seed }

type outcome = {
  label : string;
  rate : float;
  reliable : bool;
  result : (System.result, string) Stdlib.result;
}

let run_outcome ~label ~rate ~reliability scen =
  let reliable = match reliability with System.Off -> false | _ -> true in
  let result =
    (* With reliability off a loss-induced FIFO gap makes the hardened
       SPA abort with Protocol_error rather than corrupt the warehouse;
       that abort is itself a data point. *)
    match System.run (cfg_for ~rate ~reliability ~seed:7 scen) with
    | r -> Ok r
    | exception Mvc.Vut.Protocol_error _ -> Error "SPA abort (FIFO gap)"
  in
  { label; rate; reliable; result }

let outcome_row o =
  match o.result with
  | Error msg -> [ o.label; Tables.f3 o.rate; msg; "-"; "-"; "-"; "-" ]
  | Ok r ->
    let m = r.metrics in
    [ o.label; Tables.f3 o.rate;
      (if r.stuck then "STUCK" else verdict_level r);
      Printf.sprintf "%d/%d" (Atomic.get m.Metrics.msgs_dropped) (Atomic.get m.Metrics.retransmits);
      string_of_int (Atomic.get m.Metrics.nacks);
      Tables.ms (mean_staleness r);
      Tables.f3 m.Metrics.completed_at ]

let json_outcome o =
  let common =
    Printf.sprintf "\"label\": \"%s\", \"loss_rate\": %.3f, \"reliable\": %b"
      o.label o.rate o.reliable
  in
  match o.result with
  | Error msg ->
    Printf.sprintf "    { %s, \"aborted\": \"%s\" }" common msg
  | Ok r ->
    let m = r.metrics in
    Printf.sprintf
      "    { %s, \"level\": \"%s\", \"stuck\": %b, \"dropped\": %d, \
       \"retransmits\": %d, \"nacks\": %d, \"dup_frames_dropped\": %d, \
       \"commits\": %d, \"mean_staleness_ms\": %.2f, \"drain_s\": %.3f }"
      common (verdict_level r) r.stuck (Atomic.get m.Metrics.msgs_dropped)
      (Atomic.get m.Metrics.retransmits) (Atomic.get m.Metrics.nacks) (Atomic.get m.Metrics.dup_frames_dropped)
      (Atomic.get m.Metrics.commits)
      (1000.0 *. mean_staleness r)
      m.Metrics.completed_at

let crash_outcome () =
  let cfg =
    { (System.default Workload.Scenarios.paper_views) with
      faults =
        [ System.Crash_vm { view = "V2"; at_event = 2; restart_after = 0.1 } ];
      reliability = System.Acked Sim.Reliable.default_params;
      arrival = System.Poisson 60.0;
      seed = 1 }
  in
  System.run cfg

let run () =
  Tables.section
    "R: reliability layer — overhead when clean, repair when lossy";
  let scen = scenario ~seed:11 in
  let acked = System.Acked Sim.Reliable.default_params in
  let outcomes =
    [ run_outcome ~label:"off, clean" ~rate:0.0 ~reliability:System.Off scen;
      run_outcome ~label:"acked, clean" ~rate:0.0 ~reliability:acked scen;
      run_outcome ~label:"off, lossy" ~rate:0.15 ~reliability:System.Off scen;
      run_outcome ~label:"acked, lossy" ~rate:0.15 ~reliability:acked scen;
      run_outcome ~label:"acked, very lossy" ~rate:0.30 ~reliability:acked
        scen ]
  in
  Tables.print
    ~title:"same workload, loss rate x reliability (SPA / complete managers)"
    ~header:
      [ "config"; "loss"; "consistency"; "dropped/retx"; "nacks";
        "mean staleness"; "drain (s)" ]
    (List.map outcome_row outcomes);
  Printf.printf
    "expected shape: acked rows stay complete at every loss rate (paying \
     staleness\nand drain time for retransmits); off rows abort on a FIFO \
     gap or get stuck.\n";
  let crash = crash_outcome () in
  Tables.print ~title:"crash-restart recovery (complete manager, acked)"
    ~header:
      [ "crashes"; "recoveries"; "consistency"; "retransmits"; "drain (s)" ]
    [ [ string_of_int (Atomic.get crash.metrics.Metrics.crashes);
        string_of_int (Atomic.get crash.metrics.Metrics.recoveries);
        (if crash.stuck then "STUCK" else verdict_level crash);
        string_of_int (Atomic.get crash.metrics.Metrics.retransmits);
        Tables.f3 crash.metrics.Metrics.completed_at ] ];
  let oc = open_out "BENCH_resilience.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe resilience\",\n\
    \  \"sweep\": [\n%s\n  ],\n\
    \  \"crash_recovery\": { \"crashes\": %d, \"recoveries\": %d, \
     \"level\": \"%s\", \"drain_s\": %.3f }\n\
     }\n"
    (String.concat ",\n" (List.map json_outcome outcomes))
    (Atomic.get crash.metrics.Metrics.crashes) (Atomic.get crash.metrics.Metrics.recoveries)
    (verdict_level crash) crash.metrics.Metrics.completed_at;
  close_out oc;
  Printf.printf "wrote BENCH_resilience.json\n%!"

(* ---- deterministic smoke soak for `dune build @soak-smoke` ---- *)

let faultsoak () =
  Tables.section "fault soak (smoke): random fault plans under acked channels";
  let n = if !Micro.quick then 8 else 24 in
  let failures = ref 0 in
  let one seed =
    let rng = Sim.Rng.create (0xFA57 + seed) in
    let scen =
      Workload.Generator.generate
        { Workload.Generator.default with
          seed = 1 + Sim.Rng.int rng 1000;
          n_views = 3;
          n_transactions = 8;
          initial_tuples = 4 }
    in
    let vm_kind, merge_kind, want, label =
      match seed mod 3 with
      | 0 ->
        (System.Complete_vm, System.Auto, Consistency.Checker.Complete,
         "complete/spa")
      | 1 ->
        (System.Complete_vm, System.Force_pa, Consistency.Checker.Strong,
         "complete/pa")
      | _ ->
        (System.Batching_vm, System.Auto, Consistency.Checker.Strong,
         "batching/pa")
    in
    let faults =
      if seed mod 4 = 0 then
        [ System.Crash_vm
            { view = Query.View.name (List.hd scen.Workload.Scenarios.views);
              at_event = 1 + Sim.Rng.int rng 3;
              restart_after = 0.05 +. Sim.Rng.float rng 0.1 } ]
      else []
    in
    let cfg =
      { (System.default scen) with
        vm_kind;
        merge_kind;
        fault_plan =
          Workload.Fault_plan.random ~drop:0.15 ~duplicate:0.1 ~delay:0.1
            ~delay_by:0.05 "*";
        faults;
        reliability = System.Acked Sim.Reliable.default_params;
        arrival = System.Poisson 80.0;
        seed = Sim.Rng.int rng 10_000 }
    in
    let r = System.run cfg in
    let v = System.verdict r in
    let ok = (not r.stuck) && Consistency.Checker.at_least want v in
    if not ok then incr failures;
    [ string_of_int seed; label;
      string_of_int (Atomic.get r.metrics.Metrics.msgs_dropped);
      string_of_int (Atomic.get r.metrics.Metrics.retransmits);
      string_of_int (Atomic.get r.metrics.Metrics.crashes);
      (if r.stuck then "STUCK" else Consistency.Checker.(level_name (level v)));
      (if ok then "ok" else "FAIL") ]
  in
  let rows = List.map one (List.init n (fun i -> i + 1)) in
  Tables.print
    ~title:
      (Printf.sprintf
         "%d seeded runs, 15%% drop / 10%% dup / 10%% delay on every channel"
         n)
    ~header:
      [ "seed"; "config"; "dropped"; "retx"; "crashes"; "consistency";
        "verdict" ]
    rows;
  if !failures > 0 then (
    Printf.printf "FAULT SOAK FAILED: %d/%d runs violated their guarantee\n"
      !failures n;
    exit 1)
  else Printf.printf "fault soak ok: %d/%d runs kept their guarantee\n%!" n n
