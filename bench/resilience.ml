(* R: resilience experiments. What does the reliability layer cost on a
   clean network, what does it buy on a lossy one, and how fast does a
   crashed view manager catch back up? Results land in
   BENCH_resilience.json (format documented in EXPERIMENTS.md) so future
   PRs can diff the trajectory.

   [faultsoak] is the fast deterministic variant wired to the
   `@soak-smoke` dune alias: a fixed-seed matrix of random fault plans
   that exits nonzero if any acked run gets stuck or misses the
   consistency level its configuration guarantees. *)

open Whips

let verdict_level (r : System.result) =
  Consistency.Checker.(level_name (level (System.verdict r)))

let mean_staleness (r : System.result) =
  Sim.Stats.Summary.mean r.metrics.Metrics.staleness

let scenario ~seed =
  Workload.Generator.generate
    { Workload.Generator.default with
      seed;
      n_relations = 4;
      n_views = 3;
      n_transactions = 30;
      initial_tuples = 5 }

(* Loss plan scaled by a single knob: at rate [p] every channel drops a
   message with probability p, duplicates with p/2, and spikes latency
   with p/2. *)
let plan_for rate =
  if rate <= 0.0 then Workload.Fault_plan.empty
  else
    Workload.Fault_plan.random ~drop:rate ~duplicate:(rate /. 2.0)
      ~delay:(rate /. 2.0) ~delay_by:0.05 "*"

let cfg_for ~rate ~reliability ~seed scen =
  { (System.default scen) with
    vm_kind = System.Complete_vm;
    fault_plan = plan_for rate;
    reliability;
    arrival = System.Poisson 60.0;
    seed }

type outcome = {
  label : string;
  rate : float;
  reliable : bool;
  result : (System.result, string) Stdlib.result;
}

let run_outcome ~label ~rate ~reliability scen =
  let reliable = match reliability with System.Off -> false | _ -> true in
  let result =
    (* With reliability off a loss-induced FIFO gap makes the hardened
       SPA abort with Protocol_error rather than corrupt the warehouse;
       that abort is itself a data point. *)
    match System.run (cfg_for ~rate ~reliability ~seed:7 scen) with
    | r -> Ok r
    | exception Mvc.Vut.Protocol_error _ -> Error "SPA abort (FIFO gap)"
  in
  { label; rate; reliable; result }

let outcome_row o =
  match o.result with
  | Error msg -> [ o.label; Tables.f3 o.rate; msg; "-"; "-"; "-"; "-" ]
  | Ok r ->
    let m = r.metrics in
    [ o.label; Tables.f3 o.rate;
      (if r.stuck then "STUCK" else verdict_level r);
      Printf.sprintf "%d/%d" (Atomic.get m.Metrics.msgs_dropped) (Atomic.get m.Metrics.retransmits);
      string_of_int (Atomic.get m.Metrics.nacks);
      Tables.ms (mean_staleness r);
      Tables.f3 m.Metrics.completed_at ]

let json_outcome o =
  let common =
    Printf.sprintf "\"label\": \"%s\", \"loss_rate\": %.3f, \"reliable\": %b"
      o.label o.rate o.reliable
  in
  match o.result with
  | Error msg ->
    Printf.sprintf "    { %s, \"aborted\": \"%s\" }" common msg
  | Ok r ->
    let m = r.metrics in
    Printf.sprintf
      "    { %s, \"level\": \"%s\", \"stuck\": %b, \"dropped\": %d, \
       \"retransmits\": %d, \"nacks\": %d, \"dup_frames_dropped\": %d, \
       \"commits\": %d, \"mean_staleness_ms\": %.2f, \"drain_s\": %.3f }"
      common (verdict_level r) r.stuck (Atomic.get m.Metrics.msgs_dropped)
      (Atomic.get m.Metrics.retransmits) (Atomic.get m.Metrics.nacks) (Atomic.get m.Metrics.dup_frames_dropped)
      (Atomic.get m.Metrics.commits)
      (1000.0 *. mean_staleness r)
      m.Metrics.completed_at

let crash_outcome () =
  let cfg =
    { (System.default Workload.Scenarios.paper_views) with
      faults =
        [ System.Crash_vm { view = "V2"; at_event = 2; restart_after = 0.1 } ];
      reliability = System.Acked Sim.Reliable.default_params;
      arrival = System.Poisson 60.0;
      seed = 1 }
  in
  System.run cfg

(* ---- durability: recovery time vs checkpoint interval ---- *)

(* Crash the warehouse late in a 30-transaction run and sweep the
   checkpoint cadence. Recovery replays the WAL tail accumulated since
   the last checkpoint at [replay_latency] per record, so recovery time
   should grow with the interval while the run still lands complete. *)
let checkpoint_sweep () =
  let scen = scenario ~seed:11 in
  let acked = System.Acked Sim.Reliable.default_params in
  List.map
    (fun checkpoint_every ->
      let cfg =
        { (cfg_for ~rate:0.0 ~reliability:acked ~seed:4 scen) with
          arrival = System.Poisson 120.0;
          faults =
            [ System.Crash_warehouse { at_event = 20; restart_after = 0.02 } ];
          durable =
            Some
              { System.default_durability with
                checkpoint_every;
                replay_latency = 0.002 } }
      in
      let r = System.run cfg in
      let d = Option.get r.System.durability in
      (checkpoint_every, r, d))
    [ 1; 2; 4; 8; 16; 32 ]

(* ---- durability: what does the WAL cost when nothing crashes? ---- *)

type wal_cost = {
  wall_off_s : float;
  wall_on_s : float;
  overhead_pct : float;
  on_report : System.durability_report;
}

let wal_overhead () =
  (* A workload long enough to amortize per-run fixed costs — the
     headline is the marginal cost of logging every commit and stamped
     transaction, not simulator startup. *)
  let scen =
    Workload.Generator.generate
      { Workload.Generator.default with
        seed = 11;
        n_relations = 4;
        n_views = 3;
        n_transactions = (if !Micro.quick then 300 else 1500);
        initial_tuples = 5 }
  in
  let acked = System.Acked Sim.Reliable.default_params in
  let cfg durable =
    { (cfg_for ~rate:0.0 ~reliability:acked ~seed:4 scen) with
      arrival = System.Poisson 120.0;
      durable }
  in
  (* The runs are deterministic in simulated time, so the only variance
     is host noise — scheduling and GC state. A paired design defuses
     it: each round times off and on back to back (compacting first, so
     heap history cancels) and contributes one on/off ratio taken under
     the same host conditions; the headline is the interquartile mean
     of the ratios — robust to the slow-window rounds that poison
     independent minima, tighter than a lone median. *)
  let rounds = 31 in
  let timed c =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let r = System.run c in
    (Unix.gettimeofday () -. t0, r)
  in
  let off_c = cfg None and on_c = cfg (Some System.default_durability) in
  let wall_off_s = ref infinity and wall_on_s = ref infinity in
  let ratios = ref [] in
  let r_on = ref None in
  for _ = 1 to rounds do
    let dt_off, _ = timed off_c in
    let dt_on, r = timed on_c in
    if dt_off < !wall_off_s then wall_off_s := dt_off;
    if dt_on < !wall_on_s then wall_on_s := dt_on;
    if dt_off > 0.0 then ratios := (dt_on /. dt_off) :: !ratios;
    r_on := Some r
  done;
  let wall_off_s = !wall_off_s and wall_on_s = !wall_on_s in
  let r_on = Option.get !r_on in
  let iqm_ratio =
    match List.sort compare !ratios with
    | [] -> 1.0
    | sorted ->
      let n = List.length sorted in
      let lo = n / 4 and hi = n - (n / 4) in
      let mid =
        List.filteri (fun i _ -> i >= lo && i < hi) sorted
      in
      List.fold_left ( +. ) 0.0 mid /. float_of_int (List.length mid)
  in
  { wall_off_s;
    wall_on_s;
    overhead_pct = 100.0 *. (iqm_ratio -. 1.0);
    on_report = Option.get r_on.System.durability }

let run () =
  Tables.section
    "R: reliability layer — overhead when clean, repair when lossy";
  let scen = scenario ~seed:11 in
  let acked = System.Acked Sim.Reliable.default_params in
  let outcomes =
    [ run_outcome ~label:"off, clean" ~rate:0.0 ~reliability:System.Off scen;
      run_outcome ~label:"acked, clean" ~rate:0.0 ~reliability:acked scen;
      run_outcome ~label:"off, lossy" ~rate:0.15 ~reliability:System.Off scen;
      run_outcome ~label:"acked, lossy" ~rate:0.15 ~reliability:acked scen;
      run_outcome ~label:"acked, very lossy" ~rate:0.30 ~reliability:acked
        scen ]
  in
  Tables.print
    ~title:"same workload, loss rate x reliability (SPA / complete managers)"
    ~header:
      [ "config"; "loss"; "consistency"; "dropped/retx"; "nacks";
        "mean staleness"; "drain (s)" ]
    (List.map outcome_row outcomes);
  Printf.printf
    "expected shape: acked rows stay complete at every loss rate (paying \
     staleness\nand drain time for retransmits); off rows abort on a FIFO \
     gap or get stuck.\n";
  let crash = crash_outcome () in
  Tables.print ~title:"crash-restart recovery (complete manager, acked)"
    ~header:
      [ "crashes"; "recoveries"; "consistency"; "retransmits"; "drain (s)" ]
    [ [ string_of_int (Atomic.get crash.metrics.Metrics.crashes);
        string_of_int (Atomic.get crash.metrics.Metrics.recoveries);
        (if crash.stuck then "STUCK" else verdict_level crash);
        string_of_int (Atomic.get crash.metrics.Metrics.retransmits);
        Tables.f3 crash.metrics.Metrics.completed_at ] ];
  let sweep = checkpoint_sweep () in
  Tables.print
    ~title:
      "warehouse crash: recovery time vs checkpoint interval (replay \
       0.002 s/record)"
    ~header:
      [ "ckpt every"; "wal replayed"; "restored"; "recovery (s)";
        "consistency" ]
    (List.map
       (fun (ck, r, (d : System.durability_report)) ->
         [ string_of_int ck; string_of_int d.System.wal_replayed;
           string_of_int d.System.commits_restored;
           Tables.f3 d.System.recovery_time;
           (if r.System.stuck then "STUCK" else verdict_level r) ])
       sweep);
  Printf.printf
    "expected shape: recovery time grows with the checkpoint interval \
     (longer\nWAL tail to replay); every row stays complete.\n";
  let cost = wal_overhead () in
  Tables.print ~title:"WAL overhead on a crash-free run (durable on vs off)"
    ~header:
      [ "wall off (s)"; "wall on (s)"; "overhead"; "wal bytes"; "appends";
        "syncs"; "checkpoints" ]
    [ [ Printf.sprintf "%.4f" cost.wall_off_s;
        Printf.sprintf "%.4f" cost.wall_on_s;
        Printf.sprintf "%.1f%%" cost.overhead_pct;
        string_of_int cost.on_report.System.wal_bytes;
        string_of_int cost.on_report.System.wal_appends;
        string_of_int cost.on_report.System.wal_syncs;
        string_of_int cost.on_report.System.wal_checkpoints ] ];
  (* The headline the summary gate tracks: recovery time at the default
     checkpoint cadence (simulated seconds, deterministic). *)
  let headline_recovery =
    match
      List.find_opt
        (fun (ck, _, _) -> ck = System.default_durability.System.checkpoint_every)
        sweep
    with
    | Some (_, _, d) -> d.System.recovery_time
    | None -> 0.0
  in
  let json_ck (ck, r, (d : System.durability_report)) =
    Printf.sprintf
      "    { \"checkpoint_every\": %d, \"wal_replayed\": %d, \
       \"commits_restored\": %d, \"recovery_s\": %.4f, \"level\": \"%s\" }"
      ck d.System.wal_replayed d.System.commits_restored d.System.recovery_time
      (verdict_level r)
  in
  let oc = open_out "BENCH_resilience.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 2,\n\
    \  \"generated_by\": \"bench/main.exe resilience\",\n\
    \  \"recovery_headline_s\": %.4f,\n\
    \  \"wal_overhead_pct\": %.2f,\n\
    \  \"sweep\": [\n%s\n  ],\n\
    \  \"crash_recovery\": { \"crashes\": %d, \"recoveries\": %d, \
     \"level\": \"%s\", \"drain_s\": %.3f },\n\
    \  \"checkpoint_sweep\": [\n%s\n  ],\n\
    \  \"wal_overhead\": { \"wall_off_s\": %.4f, \"wall_on_s\": %.4f, \
     \"overhead_pct\": %.2f, \"wal_bytes\": %d, \"wal_appends\": %d, \
     \"wal_syncs\": %d, \"wal_checkpoints\": %d }\n\
     }\n"
    headline_recovery cost.overhead_pct
    (String.concat ",\n" (List.map json_outcome outcomes))
    (Atomic.get crash.metrics.Metrics.crashes) (Atomic.get crash.metrics.Metrics.recoveries)
    (verdict_level crash) crash.metrics.Metrics.completed_at
    (String.concat ",\n" (List.map json_ck sweep))
    cost.wall_off_s cost.wall_on_s cost.overhead_pct
    cost.on_report.System.wal_bytes cost.on_report.System.wal_appends
    cost.on_report.System.wal_syncs cost.on_report.System.wal_checkpoints;
  close_out oc;
  Printf.printf "wrote BENCH_resilience.json\n%!"

(* ---- deterministic smoke soak for `dune build @soak-smoke` ---- *)

let faultsoak () =
  Tables.section "fault soak (smoke): random fault plans under acked channels";
  let n = if !Micro.quick then 8 else 24 in
  let failures = ref 0 in
  let one seed =
    let rng = Sim.Rng.create (0xFA57 + seed) in
    let scen =
      Workload.Generator.generate
        { Workload.Generator.default with
          seed = 1 + Sim.Rng.int rng 1000;
          n_views = 3;
          n_transactions = 8;
          initial_tuples = 4 }
    in
    let vm_kind, merge_kind, want, label =
      match seed mod 3 with
      | 0 ->
        (System.Complete_vm, System.Auto, Consistency.Checker.Complete,
         "complete/spa")
      | 1 ->
        (System.Complete_vm, System.Force_pa, Consistency.Checker.Strong,
         "complete/pa")
      | _ ->
        (System.Batching_vm, System.Auto, Consistency.Checker.Strong,
         "batching/pa")
    in
    let faults =
      if seed mod 4 = 0 then
        [ System.Crash_vm
            { view = Query.View.name (List.hd scen.Workload.Scenarios.views);
              at_event = 1 + Sim.Rng.int rng 3;
              restart_after = 0.05 +. Sim.Rng.float rng 0.1 } ]
      else []
    in
    let cfg =
      { (System.default scen) with
        vm_kind;
        merge_kind;
        fault_plan =
          Workload.Fault_plan.random ~drop:0.15 ~duplicate:0.1 ~delay:0.1
            ~delay_by:0.05 "*";
        faults;
        reliability = System.Acked Sim.Reliable.default_params;
        arrival = System.Poisson 80.0;
        seed = Sim.Rng.int rng 10_000 }
    in
    let r = System.run cfg in
    let v = System.verdict r in
    let ok = (not r.stuck) && Consistency.Checker.at_least want v in
    if not ok then incr failures;
    [ string_of_int seed; label;
      string_of_int (Atomic.get r.metrics.Metrics.msgs_dropped);
      string_of_int (Atomic.get r.metrics.Metrics.retransmits);
      string_of_int (Atomic.get r.metrics.Metrics.crashes);
      (if r.stuck then "STUCK" else Consistency.Checker.(level_name (level v)));
      (if ok then "ok" else "FAIL") ]
  in
  let rows = List.map one (List.init n (fun i -> i + 1)) in
  Tables.print
    ~title:
      (Printf.sprintf
         "%d seeded runs, 15%% drop / 10%% dup / 10%% delay on every channel"
         n)
    ~header:
      [ "seed"; "config"; "dropped"; "retx"; "crashes"; "consistency";
        "verdict" ]
    rows;
  if !failures > 0 then (
    Printf.printf "FAULT SOAK FAILED: %d/%d runs violated their guarantee\n"
      !failures n;
    exit 1)
  else Printf.printf "fault soak ok: %d/%d runs kept their guarantee\n%!" n n

(* ---- deterministic crash smoke for `dune build @crash-smoke` ---- *)

(* Each stateful singleton process is crashed mid-run, with the columnar
   kernels forced on and off and at 1 and 4 domains; the recovered run
   must not be stuck, must end in a final warehouse state byte-identical
   to a crash-free twin of the same configuration, and must pass the
   recovery certificate (nothing committed lost, nothing applied twice,
   served versions monotonic). Exits nonzero on any divergence. *)
let crashsmoke () =
  Tables.section
    "crash-smoke: process crashes must recover to the crash-free state";
  let acked = System.Acked Sim.Reliable.default_params in
  let pinned =
    [ ("merge", System.Crash_merge { at_event = 3; restart_after = 0.05 });
      ("integrator",
       System.Crash_integrator { at_event = 2; restart_after = 0.05 });
      ("warehouse",
       System.Crash_warehouse { at_event = 2; restart_after = 0.05 }) ]
  in
  let failures = ref 0 in
  List.iter
    (fun (fname, fault) ->
      List.iter
        (fun columnar ->
          List.iter
            (fun domains ->
              let run faults =
                Colsmoke.with_columnar columnar (fun () ->
                    System.run
                      { (System.default Workload.Scenarios.paper_views) with
                        faults;
                        reliability = acked;
                        arrival = System.Poisson 60.0;
                        parallel =
                          { Parallel.Config.domains;
                            shards = domains;
                            model_overlap = false };
                        seed = 1 })
              in
              let crash = run [ fault ] and clean = run [] in
              let identical =
                Relational.Database.equal
                  (Warehouse.Store.snapshot crash.System.store)
                  (Warehouse.Store.snapshot clean.System.store)
                && Warehouse.Store.commit_count crash.System.store
                   = Warehouse.Store.commit_count clean.System.store
              in
              let recovered =
                (not crash.System.stuck)
                && Atomic.get crash.System.metrics.Metrics.recoveries >= 1
              in
              let certified =
                Consistency.Checker.certified
                  (System.recovery_certificate crash)
              in
              let ok = identical && recovered && certified in
              if not ok then incr failures;
              Printf.printf
                "crash-smoke %-10s columnar %-5s domains %d: %s\n%!" fname
                (if columnar then "on" else "off")
                domains
                (if ok then "recovered identical"
                 else
                   Printf.sprintf "FAILED (recovered %b identical %b cert %b)"
                     recovered identical certified))
            [ 1; 4 ])
        [ false; true ])
    pinned;
  if !failures > 0 then begin
    Printf.printf "CRASH SMOKE FAILED: %d configurations diverged\n" !failures;
    exit 1
  end
  else
    Printf.printf
      "crash smoke ok: every crash recovered to the crash-free state\n%!"
