(* Simulation experiments. The paper (Section 7) defers its quantitative
   study to future work but names the two questions; P1 and P2 run exactly
   those studies on the simulated Figure-1 system. F1-F3 exercise the
   architecture diagrams; P3-P5 ablate the Section 4.3 / 6.1 / 6.2 design
   points. *)

open Whips

let verdict_level (v : Consistency.Checker.verdict) =
  Consistency.Checker.(level_name (level v))

let mean_staleness (r : System.result) =
  Sim.Stats.Summary.mean r.metrics.Metrics.staleness

let p95_staleness (r : System.result) =
  Sim.Stats.Summary.percentile r.metrics.Metrics.staleness 95.0

(* A moderately loaded shared workload for the sweeps. *)
let sweep_scenario ?(n_views = 4) ?(n_transactions = 150) ?(seed = 42) () =
  Workload.Generator.generate
    { Workload.Generator.default with
      seed;
      n_relations = n_views + 1;
      n_views;
      n_transactions;
      initial_tuples = 6;
      max_join_width = 2;
      value_range = 5 }

(* ---- Figure 1: the architecture, end to end ---- *)

let figure1 () =
  Tables.section
    "Figure 1: sources -> integrator -> view managers -> merge -> warehouse";
  let scen = Workload.Scenarios.retail_star in
  let run name cfg =
    let r = System.run cfg in
    let v = System.verdict r in
    [ name; r.merge_algorithm;
      string_of_int (Atomic.get r.metrics.Metrics.transactions);
      string_of_int (Atomic.get r.metrics.Metrics.commits);
      Tables.ms (mean_staleness r);
      verdict_level v ]
  in
  let base = { (System.default scen) with arrival = System.Poisson 40.0 } in
  Tables.print ~title:"one scenario, every view-manager class"
    ~header:
      [ "view managers"; "merge"; "txns"; "commits"; "mean staleness";
        "consistency" ]
    [ run "complete" base;
      run "strongly-consistent" { base with vm_kind = System.Batching_vm; seed = 2 };
      run "strobe (source queries)" { base with vm_kind = System.Strobe_vm; seed = 3 };
      run "periodic refresh" { base with vm_kind = System.Periodic_vm 0.1; seed = 4 };
      run "complete-3" { base with vm_kind = System.Complete_n_vm 3; seed = 5 };
      run "convergent" { base with vm_kind = System.Convergent_vm; seed = 6 };
      run "sequential strawman" { base with merge_kind = System.Sequential; seed = 7 } ]

(* ---- Figure 2: the three consistency layers ---- *)

let figure2 () =
  Tables.section "Figure 2: three layers of consistency";
  let scen = Workload.Scenarios.bank in
  let result =
    System.run
      { (System.default scen) with vm_kind = System.Batching_vm;
        arrival = System.Poisson 60.0; seed = 11 }
  in
  (* Layer 1: source consistency — serial execution by construction;
     verify the recorded state sequence replays the transaction log. *)
  let states = Source.Sources.states result.sources in
  let replayed =
    List.fold_left
      (fun (ok, db) txn ->
        let db' = Relational.Database.apply_transaction db txn in
        (ok, db'))
      (true, List.hd states)
      result.transactions
    |> fun (ok, final) ->
    ok && Relational.Database.equal final (List.nth states (List.length states - 1))
  in
  (* Layer 2: per-view consistency. *)
  let single_view v =
    let contents =
      List.map
        (fun ws ->
          Relational.Relation.contents
            (Relational.Database.find ws (Query.View.name v)))
        (Warehouse.Store.states result.store)
    in
    Consistency.Checker.check_single_view ~view:v
      ~transactions:result.transactions ~source_states:states ~contents
  in
  (* Layer 3: MVC. *)
  let mvc = System.verdict result in
  Tables.print ~title:"layer verdicts (batching managers + PA)"
    ~header:[ "layer"; "scope"; "verdict" ]
    ([ [ "source"; "all base data"; (if replayed then "serializable (replayed)" else "BROKEN") ] ]
    @ List.map
        (fun v ->
          [ "view"; Query.View.name v; verdict_level (single_view v) ])
        scen.views
    @ [ [ "multiple-view"; "warehouse"; verdict_level mvc ] ])

(* ---- Figure 3: distributing the merge process ---- *)

(* A workload of [clusters] disjoint view groups, [views_per_cluster] views
   each over a private chain of relations. *)
let clustered_scenario ~clusters ~views_per_cluster ~txns ~seed =
  let rng = Sim.Rng.create seed in
  let schema c k =
    Relational.Schema.make
      [ (Printf.sprintf "c%da%d" c k, Relational.Value.Int_ty);
        (Printf.sprintf "c%da%d" c (k + 1), Relational.Value.Int_ty) ]
  in
  let rel_name c k = Printf.sprintf "C%dR%d" c k in
  let n_rels = views_per_cluster + 1 in
  let specs =
    List.concat
      (List.init clusters (fun c ->
           List.init n_rels (fun k ->
               let tuples =
                 List.init 6 (fun _ ->
                     Relational.Tuple.ints
                       [ Sim.Rng.int rng 5; Sim.Rng.int rng 5 ])
               in
               { Source.Sources.source = Printf.sprintf "src%d" c;
                 relation = rel_name c k;
                 init = Relational.Relation.of_tuples (schema c k) tuples })))
  in
  let views =
    List.concat
      (List.init clusters (fun c ->
           List.init views_per_cluster (fun i ->
               Query.View.make
                 (Printf.sprintf "C%dV%d" c i)
                 (Query.Algebra.join
                    (Query.Algebra.base (rel_name c i))
                    (Query.Algebra.base (rel_name c (i + 1)))))))
  in
  let script =
    List.init txns (fun _ ->
        let c = Sim.Rng.int rng clusters in
        let k = Sim.Rng.int rng n_rels in
        [ Relational.Update.insert (rel_name c k)
            (Relational.Tuple.ints [ Sim.Rng.int rng 5; Sim.Rng.int rng 5 ]) ])
  in
  { Workload.Scenarios.name = "clustered"; specs; views; script }

let figure3 () =
  Tables.section "Figure 3: partitioning view managers over merge processes";
  let scen = clustered_scenario ~clusters:2 ~views_per_cluster:2 ~txns:10 ~seed:3 in
  let groups = Mvc.Partition.groups scen.views in
  List.iteri
    (fun i group ->
      Printf.printf "MP%d manages: %s\n" (i + 1)
        (String.concat ", "
           (List.map
              (fun v ->
                Fmt.str "%s (over %s)" (Query.View.name v)
                  (String.concat "," (Query.View.base_relations v)))
              group)))
    groups;
  let run groups_opt =
    let r =
      System.run
        { (System.default scen) with
          merge_groups = groups_opt;
          arrival = System.Poisson 50.0;
          seed = 13 }
    in
    (r, System.verdict r)
  in
  let r1, v1 = run None in
  let r2, v2 = run (Some 2) in
  Tables.print ~title:"single vs distributed merge on the same workload"
    ~header:[ "merge processes"; "commits"; "mean staleness"; "consistency" ]
    [ [ "1"; string_of_int (Atomic.get r1.metrics.Metrics.commits); Tables.ms (mean_staleness r1);
        verdict_level v1 ];
      [ "2"; string_of_int (Atomic.get r2.metrics.Metrics.commits); Tables.ms (mean_staleness r2);
        verdict_level v2 ] ]

(* ---- P1: effect of merging on view freshness (Section 7) ---- *)

let freshness () =
  Tables.section
    "P1: view freshness vs update load (the study Section 7 proposes)";
  let scen = sweep_scenario () in
  let rates = [ 5.0; 10.0; 20.0; 40.0; 80.0 ] in
  let systems =
    [ ("SPA/complete", fun cfg -> cfg);
      ( "PA/batching",
        fun cfg -> { cfg with System.vm_kind = System.Batching_vm } );
      ( "no-merge (passthrough)",
        fun cfg -> { cfg with System.merge_kind = System.Force_passthrough } );
      ( "sequential",
        fun cfg -> { cfg with System.merge_kind = System.Sequential } ) ]
  in
  let rows =
    List.map
      (fun rate ->
        string_of_int (int_of_float rate)
        :: List.concat_map
             (fun (_, tweak) ->
               let cfg =
                 tweak
                   { (System.default scen) with
                     arrival = System.Poisson rate;
                     seed = 101 }
               in
               let r = System.run cfg in
               [ Tables.ms (mean_staleness r); Tables.ms (p95_staleness r) ])
             systems)
      rates
  in
  Tables.print
    ~title:"mean / p95 staleness (source commit -> warehouse visibility)"
    ~header:
      ("rate/s"
      :: List.concat_map (fun (n, _) -> [ n ^ " mean"; n ^ " p95" ]) systems)
    rows;
  Printf.printf
    "expected shape: all comparable at low rates; the sequential strawman \
     saturates first;\npassthrough is lowest-latency but violates MVC; PA \
     pays a modest batching/holding cost over SPA\nyet degrades gracefully \
     because its managers absorb bursts into single action lists.\n"

(* ---- P2: when does the merge become a bottleneck? (Section 7) ---- *)

(* Every view joins a shared hot relation, so each hot update is relevant
   to all views and the merge handles 1 + n_views messages per update:
   fan-out drives merge load directly. *)
let fanout_scenario ~n_views ~txns ~seed =
  let rng = Sim.Rng.create seed in
  let schema names =
    Relational.Schema.make
      (List.map (fun n -> (n, Relational.Value.Int_ty)) names)
  in
  let dim k = Printf.sprintf "dim%d" k in
  let tuples n =
    List.init n (fun _ ->
        Relational.Tuple.ints [ Sim.Rng.int rng 5; Sim.Rng.int rng 5 ])
  in
  let specs =
    { Source.Sources.source = "hot"; relation = "hot";
      init =
        Relational.Relation.of_tuples (schema [ "key"; "hub" ]) (tuples 6) }
    :: List.init n_views (fun k ->
           { Source.Sources.source = "dims"; relation = dim k;
             init =
               Relational.Relation.of_tuples
                 (schema [ "hub"; Printf.sprintf "attr%d" k ])
                 (tuples 6) })
  in
  let views =
    List.init n_views (fun k ->
        Query.View.make
          (Printf.sprintf "V%d" k)
          (Query.Algebra.join (Query.Algebra.base "hot")
             (Query.Algebra.base (dim k))))
  in
  let script =
    List.init txns (fun _ ->
        [ Relational.Update.insert "hot"
            (Relational.Tuple.ints [ Sim.Rng.int rng 5; Sim.Rng.int rng 5 ]) ])
  in
  { Workload.Scenarios.name = "fanout"; specs; views; script }

let bottleneck () =
  Tables.section "P2: merge bottleneck vs fan-out and load (Section 7)";
  let rows =
    List.map
      (fun n_views ->
        let scen = fanout_scenario ~n_views ~txns:120 ~seed:7 in
        let cfg =
          { (System.default scen) with
            arrival = System.Poisson 40.0;
            latencies = { System.default_latencies with merge = 0.002 };
            seed = 7 }
        in
        let r = System.run cfg in
        let m = r.metrics in
        [ string_of_int n_views;
          Tables.f1 (Sim.Stats.Summary.mean m.Metrics.merge_held);
          Tables.f1 (Sim.Stats.Summary.max m.Metrics.merge_held);
          Tables.f1 (Sim.Stats.Summary.mean m.Metrics.merge_live_rows);
          Tables.ms (mean_staleness r);
          Tables.f3 m.Metrics.completed_at ])
      [ 1; 2; 4; 8; 16 ]
  in
  Tables.print
    ~title:
      "single merge process, rate 40/s, merge cost 2ms/message; every \
       update touches every view"
    ~header:
      [ "views"; "held ALs (mean)"; "held ALs (max)"; "live VUT rows";
        "mean staleness"; "drain time (s)" ]
    rows;
  let scen = fanout_scenario ~n_views:8 ~txns:120 ~seed:7 in
  let rows =
    List.map
      (fun rate ->
        let cfg =
          { (System.default scen) with
            arrival = System.Poisson rate;
            latencies = { System.default_latencies with merge = 0.002 };
            seed = 7 }
        in
        let r = System.run cfg in
        [ string_of_int (int_of_float rate);
          Tables.f1 (Sim.Stats.Summary.max r.metrics.Metrics.merge_held);
          Tables.ms (mean_staleness r);
          Tables.ms (p95_staleness r) ])
      [ 10.0; 20.0; 40.0; 80.0; 160.0 ]
  in
  Tables.print ~title:"8 views; update-rate sweep"
    ~header:[ "rate/s"; "held ALs (max)"; "mean staleness"; "p95 staleness" ]
    rows;
  Printf.printf
    "expected shape: held lists and staleness grow superlinearly once the \
     merge service rate\n(1/merge-cost divided by messages per update) is \
     exceeded — the bottleneck the paper anticipates.\n"

(* ---- P3: commit sequencing and batching (Section 4.3) ---- *)

let batching () =
  Tables.section "P3: warehouse commit sequencing policies (Section 4.3)";
  (* Clustered views produce many mutually independent warehouse
     transactions, which is where dependency sequencing helps. *)
  let scen =
    clustered_scenario ~clusters:4 ~views_per_cluster:2 ~txns:150 ~seed:19
  in
  let run policy =
    let r =
      System.run
        { (System.default scen) with
          submit = policy;
          arrival = System.Poisson 80.0;
          latencies = { System.default_latencies with commit = 0.02 };
          seed = 19 }
    in
    let v = System.verdict r in
    [ Warehouse.Submitter.policy_name policy;
      string_of_int (Atomic.get r.metrics.Metrics.commits);
      Tables.ms (mean_staleness r);
      Tables.ms (p95_staleness r);
      verdict_level v ]
  in
  Tables.print
    ~title:"complete managers + SPA; commit latency 20ms, rate 80/s"
    ~header:[ "policy"; "commits"; "mean staleness"; "p95"; "consistency" ]
    (List.map run
       [ Warehouse.Submitter.Serial;
         Warehouse.Submitter.Dependency;
         Warehouse.Submitter.Batched 2;
         Warehouse.Submitter.Batched 4;
         Warehouse.Submitter.Batched 8 ]);
  Printf.printf
    "expected shape: dependency-sequencing beats serial under load; \
     batching cuts commits and\nstaleness further but drops completeness to \
     strong consistency (each BWT advances several states).\n"

(* ---- P4: distributed merge scaling (Section 6.1) ---- *)

let partition () =
  Tables.section "P4: merge distribution on partitionable workloads (Section 6.1)";
  let scen =
    clustered_scenario ~clusters:4 ~views_per_cluster:2 ~txns:200 ~seed:23
  in
  let rows =
    List.map
      (fun groups ->
        let cfg =
          { (System.default scen) with
            merge_groups = (if groups = 1 then None else Some groups);
            arrival = System.Poisson 150.0;
            latencies = { System.default_latencies with merge = 0.005 };
            seed = 29 }
        in
        let r = System.run cfg in
        let v = System.verdict r in
        [ string_of_int groups;
          Tables.f1 (Sim.Stats.Summary.max r.metrics.Metrics.merge_held);
          Tables.ms (mean_staleness r);
          Tables.ms (p95_staleness r);
          verdict_level v ])
      [ 1; 2; 4 ]
  in
  Tables.print
    ~title:"4 disjoint view clusters, rate 150/s, merge cost 5ms/message"
    ~header:
      [ "merge processes"; "held ALs (max)"; "mean staleness"; "p95";
        "consistency" ]
    rows;
  Printf.printf
    "expected shape: staleness drops as merges are added until one merge \
     per cluster; consistency is preserved throughout.\n"

(* ---- P5: multi-update / multi-source transactions (Section 6.2) ---- *)

let multisource () =
  Tables.section "P5: transactions spanning relations and sources (Section 6.2)";
  let rows =
    List.map
      (fun prob ->
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with
              seed = 31;
              n_sources = 3;
              n_relations = 5;
              n_views = 4;
              n_transactions = 100;
              multi_update_prob = prob }
        in
        let cfg =
          { (System.default scen) with arrival = System.Poisson 40.0; seed = 31 }
        in
        let r = System.run cfg in
        let multi =
          List.length
            (List.filter
               (fun (t : Relational.Update.Transaction.t) ->
                 List.length (Relational.Update.Transaction.relations t) > 1)
               r.transactions)
        in
        let v = System.verdict r in
        [ Printf.sprintf "%.2f" prob;
          string_of_int multi;
          string_of_int (Atomic.get r.metrics.Metrics.commits);
          Tables.ms (mean_staleness r);
          verdict_level v ])
      [ 0.0; 0.25; 0.5; 0.75 ]
  in
  Tables.print
    ~title:"SPA with multi-update transactions as the VUT row unit"
    ~header:
      [ "multi-update prob"; "multi-rel txns"; "commits"; "mean staleness";
        "consistency" ]
    rows

(* ---- P6: the price of promptness (Section 4.4's remark) ---- *)

let promptness () =
  Tables.section
    "P6: promptness ablation — SPA vs the hold-everything strawman \
     (Section 4.4)";
  let scen = sweep_scenario ~n_transactions:100 () in
  let rows =
    List.map
      (fun rate ->
        let base =
          { (System.default scen) with
            arrival = System.Poisson rate;
            seed = 91 }
        in
        let spa = System.run base in
        let hold = System.run { base with merge_kind = System.Force_holdall } in
        let v_spa = System.verdict spa and v_hold = System.verdict hold in
        [ string_of_int (int_of_float rate);
          Tables.ms (mean_staleness spa);
          verdict_level v_spa;
          Tables.ms (mean_staleness hold);
          verdict_level v_hold ])
      [ 10.0; 20.0; 40.0 ]
  in
  Tables.print
    ~title:"both complete; only SPA applies rows at the earliest safe event"
    ~header:
      [ "rate/s"; "SPA staleness"; "SPA level"; "hold-all staleness";
        "hold-all level" ]
    rows;
  Printf.printf
    "expected shape: identical consistency level; hold-all staleness grows \
     with the stream length\nbecause nothing reaches the warehouse before \
     the end — promptness is what SPA buys.\n"

(* ---- P7: REL routing (Section 3.2's alternative scheme) ---- *)

let relrouting () =
  Tables.section
    "P7: REL_i routed directly vs carried by a view manager (Section 3.2)";
  let scen = sweep_scenario ~n_transactions:120 () in
  let run routing vm =
    let r =
      System.run
        { (System.default scen) with
          rel_routing = routing;
          vm_kind = vm;
          arrival = System.Poisson 60.0;
          seed = 97 }
    in
    (r, System.verdict r)
  in
  let rows =
    List.map
      (fun (label, routing, vm) ->
        let r, v = run routing vm in
        [ label; r.merge_algorithm;
          string_of_int (Atomic.get r.metrics.Metrics.commits);
          Tables.ms (mean_staleness r);
          verdict_level v ])
      [ ("direct / complete", System.Direct, System.Complete_vm);
        ("via-manager / complete", System.Via_manager, System.Complete_vm);
        ("direct / batching", System.Direct, System.Batching_vm);
        ("via-manager / batching", System.Via_manager, System.Batching_vm) ]
  in
  Tables.print
    ~title:
      "the alternative saves integrator->merge messages at a small \
       freshness cost (RELs can trail other managers' lists)"
    ~header:[ "routing / managers"; "merge"; "commits"; "staleness"; "level" ]
    rows

(* ---- A2: view-definition optimization ablation, system level ---- *)

let optimizer () =
  Tables.section "A2: selection-pushdown ablation at system level";
  (* Selective views over a sizeable join: the optimizer rewrites the
     managers' delta expressions. *)
  let rng = Sim.Rng.create 3 in
  let scen =
    let schema names =
      Relational.Schema.make
        (List.map (fun n -> (n, Relational.Value.Int_ty)) names)
    in
    let rows n =
      List.init n (fun _ ->
          Relational.Tuple.ints [ Sim.Rng.int rng 30; Sim.Rng.int rng 30 ])
    in
    { Workload.Scenarios.name = "selective";
      specs =
        [ { Source.Sources.source = "a"; relation = "Big1";
            init = Relational.Relation.of_tuples (schema [ "k"; "v" ]) (rows 300) };
          { source = "b"; relation = "Big2";
            init = Relational.Relation.of_tuples (schema [ "v"; "w" ]) (rows 300) } ];
      views =
        List.init 3 (fun i ->
            Query.View.make
              (Printf.sprintf "Sel%d" i)
              Query.Algebra.(
                select
                  (Query.Pred.eq "k" (Relational.Value.Int i))
                  (join (base "Big1") (base "Big2"))));
      script =
        List.init 60 (fun _ ->
            [ Relational.Update.insert "Big2"
                (Relational.Tuple.ints [ Sim.Rng.int rng 30; Sim.Rng.int rng 30 ]) ]) }
  in
  let run optimize =
    let t0 = Unix.gettimeofday () in
    let r =
      System.run
        { (System.default scen) with
          optimize_views = optimize;
          arrival = System.Poisson 40.0;
          seed = 17 }
    in
    let wall = Unix.gettimeofday () -. t0 in
    let v = System.verdict r in
    [ (if optimize then "optimized definitions" else "raw definitions");
      Printf.sprintf "%.0f ms" (1000.0 *. wall);
      Tables.ms (mean_staleness r);
      verdict_level v ]
  in
  Tables.print
    ~title:
      "3 selective join views over 300x300 base data, 60 updates \
       (wall-clock = real maintenance work)"
    ~header:[ "view definitions"; "wall-clock"; "sim staleness"; "consistency" ]
    [ run false; run true ]

(* ---- A1: aggregate views across every manager class ---- *)

let aggregates () =
  Tables.section
    "A1: aggregate rollups (Section 1.2) under every manager class";
  let scen = Workload.Scenarios.sales_rollup in
  let run name cfg =
    let r = System.run cfg in
    let v = System.verdict r in
    [ name; r.merge_algorithm;
      string_of_int (Atomic.get r.metrics.Metrics.commits);
      Tables.ms (mean_staleness r);
      verdict_level v ]
  in
  let base =
    { (System.default scen) with arrival = System.Poisson 50.0; seed = 13 }
  in
  Tables.print
    ~title:"per-store / per-category SUM-COUNT-MAX rollups + detail copy"
    ~header:[ "view managers"; "merge"; "commits"; "staleness"; "consistency" ]
    [ run "complete" base;
      run "strongly-consistent" { base with vm_kind = System.Batching_vm };
      run "strobe" { base with vm_kind = System.Strobe_vm };
      run "periodic 0.1s" { base with vm_kind = System.Periodic_vm 0.1 };
      run "complete-2" { base with vm_kind = System.Complete_n_vm 2 };
      run "sequential" { base with merge_kind = System.Sequential } ]

(* ---- V: randomized validation soak (Theorems 4.1 / 5.1) ---- *)

let soak () =
  Tables.section
    "V: randomized validation of Theorems 4.1 and 5.1 (oracle soak)";
  let n = 60 in
  let run_one seed kind =
    let scen =
      Workload.Generator.generate
        { Workload.Generator.default with
          seed;
          n_transactions = 15;
          n_views = 3;
          multi_update_prob = (if seed mod 3 = 0 then 0.3 else 0.0);
          aggregate_views = seed mod 2 = 0 }
    in
    let cfg =
      { (System.default scen) with
        vm_kind = kind;
        arrival = System.Poisson 120.0;
        seed }
    in
    System.verdict (System.run cfg)
  in
  let count pred kind =
    List.length
      (List.filter
         (fun seed -> pred (run_one seed kind))
         (List.init n (fun i -> i + 1)))
  in
  let complete_spa =
    count (fun (v : Consistency.Checker.verdict) -> v.complete) System.Complete_vm
  in
  let strong_pa =
    count
      (fun (v : Consistency.Checker.verdict) -> v.strongly_consistent)
      System.Batching_vm
  in
  let strong_strobe =
    count
      (fun (v : Consistency.Checker.verdict) -> v.strongly_consistent)
      System.Strobe_vm
  in
  Tables.print ~title:(Printf.sprintf "%d random workloads per row" n)
    ~header:[ "system"; "claim"; "verified" ]
    [ [ "SPA / complete managers"; "complete (Thm 4.1)";
        Printf.sprintf "%d/%d" complete_spa n ];
      [ "PA / batching managers"; "strongly consistent (Thm 5.1)";
        Printf.sprintf "%d/%d" strong_pa n ];
      [ "PA / strobe managers"; "strongly consistent (Thm 5.1)";
        Printf.sprintf "%d/%d" strong_strobe n ] ]

let run () =
  figure1 ();
  figure2 ();
  figure3 ();
  freshness ();
  bottleneck ();
  batching ();
  partition ();
  multisource ();
  promptness ();
  relrouting ();
  aggregates ();
  optimizer ();
  soak ()
