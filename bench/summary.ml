(* Folds every BENCH_*.json artifact in the working directory into one
   BENCH_summary.json: experiment name -> the headline number(s) each
   artifact reports. The artifacts are written by this harness with
   known key names, so extraction is a flat scan for `"key": value`
   pairs — no JSON parser needed (none is vendored), and a missing file
   or key simply drops out of the summary rather than failing. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* First occurrence of ["key": <number>] in [content]. *)
let find_number content key =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle and clen = String.length content in
  let rec search i =
    if i + nlen > clen then None
    else if String.sub content i nlen = needle then begin
      let j = ref (i + nlen) in
      while
        !j < clen && (content.[!j] = ' ' || content.[!j] = '\n')
      do
        incr j
      done;
      let start = !j in
      while
        !j < clen
        && (match content.[!j] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr j
      done;
      if !j > start then float_of_string_opt (String.sub content start (!j - start))
      else None
    end
    else search (i + 1)
  in
  search 0

(* Per artifact: the headline metrics worth surfacing, as
   (json key in the artifact, summary label). *)
let catalogue =
  [ ( "BENCH_kernel.json",
      "micro",
      [ ("ns_per_run", "first_kernel_ns_per_run") ] );
    ( "BENCH_parallel.json",
      "parallel",
      [ ( "speedup_vs_sequential_at_4_domains",
          "modeled_speedup_at_4_domains" ) ] );
    ( "BENCH_resilience.json",
      "resilience",
      [ ("loss_rate", "first_loss_rate"); ("recoveries", "crash_recoveries") ]
    );
    ( "BENCH_serve.json",
      "serve",
      [ ("speedup_compiled", "read_path_speedup_compiled");
        ("speedup_cached", "read_path_speedup_cached") ] );
    ( "BENCH_shared.json",
      "shared",
      [ ("rows_reduction_at_degree_3", "rows_reduction_at_degree_3");
        ("mean_read_latency_ms", "invalidate_read_latency_ms") ] ) ]

let run () =
  Tables.section "summary: folding BENCH_*.json headline numbers";
  let entries =
    List.filter_map
      (fun (path, name, keys) ->
        if Sys.file_exists path then begin
          let content = read_file path in
          let found =
            List.filter_map
              (fun (key, label) ->
                Option.map (fun v -> (label, v)) (find_number content key))
              keys
          in
          Some (path, name, found)
        end
        else None)
      catalogue
  in
  let oc = open_out "BENCH_summary.json" in
  let entry_json (path, name, found) =
    let metrics =
      List.map
        (fun (label, v) -> Printf.sprintf "      \"%s\": %g" label v)
        found
    in
    Printf.sprintf
      "    { \"experiment\": \"%s\", \"artifact\": \"%s\",\n\
       \      \"headline\": {\n%s\n      } }"
      name path
      (String.concat ",\n" (List.map (fun m -> "  " ^ m) metrics))
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe summary\",\n\
    \  \"experiments\": [\n%s\n  ]\n\
     }\n"
    (String.concat ",\n" (List.map entry_json entries));
  close_out oc;
  List.iter
    (fun (path, name, found) ->
      Printf.printf "  %-12s %-24s %s\n" name path
        (String.concat ", "
           (List.map (fun (l, v) -> Printf.sprintf "%s=%g" l v) found)))
    entries;
  Printf.printf "wrote BENCH_summary.json (%d artifacts)\n%!"
    (List.length entries)
