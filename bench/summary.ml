(* Folds every BENCH_*.json artifact in the working directory into one
   BENCH_summary.json: experiment name -> the headline number(s) each
   artifact reports. The artifacts are written by this harness with
   known key names, so extraction is a flat scan for `"key": value`
   pairs — no JSON parser needed (none is vendored), and a missing file
   or key simply drops out of the summary rather than failing. *)

(* Set by `bench/main.exe --check-regression`: after folding, compare
   the kernel headline against the last BENCH_history.jsonl entry for
   the same kernel and fail the run if it regressed. *)
let check_regression = ref false

(* Allowed headline slowdown before the gate trips. *)
let regression_factor = 1.5

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* First occurrence of ["key": <number>] in [content]. *)
let find_number content key =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle and clen = String.length content in
  let rec search i =
    if i + nlen > clen then None
    else if String.sub content i nlen = needle then begin
      let j = ref (i + nlen) in
      while
        !j < clen && (content.[!j] = ' ' || content.[!j] = '\n')
      do
        incr j
      done;
      let start = !j in
      while
        !j < clen
        && (match content.[!j] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr j
      done;
      if !j > start then float_of_string_opt (String.sub content start (!j - start))
      else None
    end
    else search (i + 1)
  in
  search 0

(* First occurrence of ["key": "<string>"] in [content]. *)
let find_string content key =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle and clen = String.length content in
  let rec search i =
    if i + nlen > clen then None
    else if String.sub content i nlen = needle then begin
      let j = ref (i + nlen) in
      while !j < clen && (content.[!j] = ' ' || content.[!j] = '\n') do
        incr j
      done;
      if !j < clen && content.[!j] = '"' then begin
        let start = !j + 1 in
        let k = ref start in
        while !k < clen && content.[!k] <> '"' do
          incr k
        done;
        if !k < clen then Some (String.sub content start (!k - start)) else None
      end
      else None
    end
    else search (i + 1)
  in
  search 0

(* First occurrence of ["key": true/false] in [content]. *)
let find_bool content key =
  let needle = "\"" ^ key ^ "\":" in
  let nlen = String.length needle and clen = String.length content in
  let rec search i =
    if i + nlen > clen then None
    else if String.sub content i nlen = needle then begin
      let j = ref (i + nlen) in
      while !j < clen && (content.[!j] = ' ' || content.[!j] = '\n') do
        incr j
      done;
      let starts_with word =
        !j + String.length word <= clen
        && String.sub content !j (String.length word) = word
      in
      if starts_with "true" then Some true
      else if starts_with "false" then Some false
      else None
    end
    else search (i + 1)
  in
  search 0

(* The commit the run measured, read straight from .git (no subprocess):
   HEAD either holds the hash or names a ref whose file holds it. Any
   surprise degrades to "unknown" rather than failing the bench run. *)
let git_rev () =
  let read path =
    try Some (String.trim (read_file path)) with Sys_error _ -> None
  in
  match read ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
    if String.length head >= 5 && String.sub head 0 5 = "ref: " then begin
      let ref_name = String.sub head 5 (String.length head - 5) in
      match read (Filename.concat ".git" ref_name) with
      | Some rev when rev <> "" -> rev
      | Some _ | None -> "unknown"
    end
    else if head <> "" then head
    else "unknown"

(* Per artifact: the headline metrics worth surfacing, as
   (json key in the artifact, summary label). *)
let catalogue =
  [ ( "BENCH_kernel.json",
      "micro",
      [ ("ns_per_run", "first_kernel_ns_per_run") ] );
    ( "BENCH_parallel.json",
      "parallel",
      [ ( "speedup_vs_sequential_at_4_domains",
          "modeled_speedup_at_4_domains" ) ] );
    ( "BENCH_resilience.json",
      "resilience",
      [ ("loss_rate", "first_loss_rate"); ("recoveries", "crash_recoveries");
        ("recovery_headline_s", "recovery_headline_s");
        ("wal_overhead_pct", "wal_overhead_pct") ] );
    ( "BENCH_serve.json",
      "serve",
      [ ("speedup_compiled", "read_path_speedup_compiled");
        ("speedup_cached", "read_path_speedup_cached") ] );
    ( "BENCH_shared.json",
      "shared",
      [ ("rows_reduction_at_degree_3", "rows_reduction_at_degree_3");
        ("mean_read_latency_ms", "invalidate_read_latency_ms") ] );
    ( "BENCH_dist.json",
      "dist",
      [ ("dist_merge_events_per_update", "dist_merge_events_per_update");
        ("tenant_scaling_ratio", "tenant_scaling_ratio") ] );
    ( "BENCH_selfmaint.json",
      "selfmaint",
      [ ("freshness_speedup_at_top_rate", "selfmaint_freshness_speedup");
        ("roundtrips_per_update", "selfmaint_roundtrips_per_update");
        ("aux_saved_cells_pct", "selfmaint_aux_saved_cells_pct") ] );
    ( "BENCH_merge.json",
      "merge",
      [ ("merge_saturation_speedup", "merge_saturation_speedup");
        ("saturation_rate_fused", "merge_saturation_rate_fused");
        ("coalesce_cancel_ratio", "merge_coalesce_cancel_ratio") ] ) ]

let history_path = "BENCH_history.jsonl"

let run () =
  Tables.section "summary: folding BENCH_*.json headline numbers";
  let entries =
    List.filter_map
      (fun (path, name, keys) ->
        if Sys.file_exists path then begin
          let content = read_file path in
          let found =
            List.filter_map
              (fun (key, label) ->
                Option.map (fun v -> (label, v)) (find_number content key))
              keys
          in
          Some (path, name, found)
        end
        else None)
      catalogue
  in
  let oc = open_out "BENCH_summary.json" in
  let entry_json (path, name, found) =
    let metrics =
      List.map
        (fun (label, v) -> Printf.sprintf "      \"%s\": %g" label v)
        found
    in
    Printf.sprintf
      "    { \"experiment\": \"%s\", \"artifact\": \"%s\",\n\
       \      \"headline\": {\n%s\n      } }"
      name path
      (String.concat ",\n" (List.map (fun m -> "  " ^ m) metrics))
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe summary\",\n\
    \  \"experiments\": [\n%s\n  ]\n\
     }\n"
    (String.concat ",\n" (List.map entry_json entries));
  close_out oc;
  List.iter
    (fun (path, name, found) ->
      Printf.printf "  %-12s %-24s %s\n" name path
        (String.concat ", "
           (List.map (fun (l, v) -> Printf.sprintf "%s=%g" l v) found)))
    entries;
  Printf.printf "wrote BENCH_summary.json (%d artifacts)\n%!"
    (List.length entries);
  (* The kernel headline this run measured (name, ns, quick). *)
  let headline =
    if Sys.file_exists "BENCH_kernel.json" then begin
      let content = read_file "BENCH_kernel.json" in
      match
        ( find_string content "headline_kernel",
          find_number content "ns_per_run",
          find_bool content "quick" )
      with
      | Some name, Some ns, quick ->
        Some (name, ns, Option.value ~default:false quick)
      | _ -> None
    end
    else None
  in
  (* The last recorded run of the same headline kernel at the same
     measurement quota — what the regression gate compares against.
     Read before this run is appended. *)
  let previous =
    match headline with
    | None -> None
    | Some (name, _, quick) ->
      if not (Sys.file_exists history_path) then None
      else
        List.fold_left
          (fun acc line ->
            match
              ( find_string line "headline_kernel",
                find_number line "headline_ns",
                find_bool line "quick" )
            with
            | Some n, Some ns, Some q when n = name && q = quick ->
              Some (ns, Option.value ~default:"unknown" (find_string line "git_rev"))
            | _ -> acc)
          None
          (String.split_on_char '\n' (read_file history_path))
  in
  (* Last recorded resilience recovery headline, read before this run is
     appended (same discipline as the kernel gate above). *)
  let previous_recovery =
    if not (Sys.file_exists history_path) then None
    else
      List.fold_left
        (fun acc line ->
          match find_number line "recovery_headline_s" with
          | Some v when v > 0.0 ->
            Some (v, Option.value ~default:"unknown" (find_string line "git_rev"))
          | _ -> acc)
        None
        (String.split_on_char '\n' (read_file history_path))
  in
  (* Last recorded selfmaint freshness speedup (same discipline). This
     one is bigger-is-better, so the gate below inverts the
     comparison. *)
  let previous_selfmaint =
    if not (Sys.file_exists history_path) then None
    else
      List.fold_left
        (fun acc line ->
          match find_number line "selfmaint_freshness_speedup" with
          | Some v when v > 0.0 ->
            Some (v, Option.value ~default:"unknown" (find_string line "git_rev"))
          | _ -> acc)
        None
        (String.split_on_char '\n' (read_file history_path))
  in
  (* Last recorded distributed tenant-scaling ratio (same discipline). *)
  let previous_dist =
    if not (Sys.file_exists history_path) then None
    else
      List.fold_left
        (fun acc line ->
          match find_number line "tenant_scaling_ratio" with
          | Some v when v > 0.0 ->
            Some (v, Option.value ~default:"unknown" (find_string line "git_rev"))
          | _ -> acc)
        None
        (String.split_on_char '\n' (read_file history_path))
  in
  (* Last recorded merge fast-path saturation speedup (same discipline;
     bigger-is-better like the selfmaint gate). *)
  let previous_merge =
    if not (Sys.file_exists history_path) then None
    else
      List.fold_left
        (fun acc line ->
          match find_number line "merge_saturation_speedup" with
          | Some v when v > 0.0 ->
            Some (v, Option.value ~default:"unknown" (find_string line "git_rev"))
          | _ -> acc)
        None
        (String.split_on_char '\n' (read_file history_path))
  in
  (* Append this run's headlines — one JSON line per run, so the perf
     trajectory accumulates across commits instead of being overwritten
     like BENCH_summary.json. *)
  let all_metrics =
    List.concat_map (fun (_, _, found) -> found) entries
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 history_path in
  Printf.fprintf oc
    "{ \"git_rev\": \"%s\", \"quick\": %b%s, \"metrics\": { %s } }\n"
    (git_rev ())
    (match headline with Some (_, _, q) -> q | None -> false)
    (match headline with
    | Some (name, ns, _) ->
      Printf.sprintf ", \"headline_kernel\": \"%s\", \"headline_ns\": %.1f"
        name ns
    | None -> "")
    (String.concat ", "
       (List.map
          (fun (label, v) -> Printf.sprintf "\"%s\": %g" label v)
          all_metrics));
  close_out oc;
  Printf.printf "appended %s\n%!" history_path;
  if !check_regression then begin
    match (headline, previous) with
    | Some (name, ns, _), Some (prev_ns, prev_rev) ->
      if prev_ns > 0.0 && ns > regression_factor *. prev_ns then begin
        Printf.printf
          "REGRESSION: %s at %.1f ns/run, %.2fx the %.1f ns/run recorded at \
           %s (gate: %.1fx)\n\
           %!"
          name ns (ns /. prev_ns) prev_ns prev_rev regression_factor;
        exit 1
      end
      else
        Printf.printf "regression gate: %s at %.1f ns/run vs %.1f (ok)\n%!"
          name ns prev_ns
    | Some (name, ns, _), None ->
      Printf.printf
        "regression gate: no prior history for %s (recorded %.1f ns/run)\n%!"
        name ns
    | None, _ ->
      Printf.printf "regression gate: no kernel headline to check\n%!"
  end;
  (* Resilience headline: warehouse-crash recovery time at the default
     checkpoint cadence. Simulated seconds — fully deterministic — so
     any growth beyond the factor is a real protocol regression, not
     measurement noise. *)
  if !check_regression then begin
    let current = List.assoc_opt "recovery_headline_s" all_metrics in
    match (current, previous_recovery) with
    | Some cur, Some (prev_s, prev_rev) ->
      if prev_s > 0.0 && cur > regression_factor *. prev_s then begin
        Printf.printf
          "REGRESSION: warehouse-crash recovery at %.4f s, %.2fx the %.4f s \
           recorded at %s (gate: %.1fx)\n\
           %!"
          cur (cur /. prev_s) prev_s prev_rev regression_factor;
        exit 1
      end
      else
        Printf.printf
          "regression gate: recovery headline %.4f s vs %.4f (ok)\n%!" cur
          prev_s
    | Some cur, None ->
      Printf.printf
        "regression gate: no prior recovery headline (recorded %.4f s)\n%!"
        cur
    | None, _ ->
      Printf.printf "regression gate: no recovery headline to check\n%!"
  end;
  (* Distributed headline: per-shard merge load growth when the tenant
     population quadruples at a fixed shard count. Sharding by tenant
     should keep this ~1.0; a jump past the factor means routing or the
     per-shard merge started doing per-tenant work again. *)
  if !check_regression then begin
    let current = List.assoc_opt "tenant_scaling_ratio" all_metrics in
    match (current, previous_dist) with
    | Some cur, Some (prev_r, prev_rev) ->
      if prev_r > 0.0 && cur > regression_factor *. prev_r then begin
        Printf.printf
          "REGRESSION: dist tenant-scaling ratio at %.4f, %.2fx the %.4f \
           recorded at %s (gate: %.1fx)\n\
           %!"
          cur (cur /. prev_r) prev_r prev_rev regression_factor;
        exit 1
      end
      else
        Printf.printf
          "regression gate: dist scaling ratio %.4f vs %.4f (ok)\n%!" cur
          prev_r
    | Some cur, None ->
      Printf.printf
        "regression gate: no prior dist scaling ratio (recorded %.4f)\n%!" cur
    | None, _ ->
      Printf.printf "regression gate: no dist scaling ratio to check\n%!"
  end;
  (* Self-maintenance headline: freshness speedup over Strobe at the top
     benched rate. Bigger is better, so the gate trips when the speedup
     FALLS below 1/factor of the last recorded run — the selfmaint path
     started paying round trips (the roundtrips gate below catches the
     literal case) or lost its latency edge. Simulated time, so any
     move past the factor is structural, not noise. *)
  if !check_regression then begin
    let current = List.assoc_opt "selfmaint_freshness_speedup" all_metrics in
    (match (current, previous_selfmaint) with
    | Some cur, Some (prev_s, prev_rev) ->
      if prev_s > 0.0 && cur < prev_s /. regression_factor then begin
        Printf.printf
          "REGRESSION: selfmaint freshness speedup at %.2fx, down from \
           %.2fx recorded at %s (gate: %.1fx)\n\
           %!"
          cur prev_s prev_rev regression_factor;
        exit 1
      end
      else
        Printf.printf
          "regression gate: selfmaint speedup %.2fx vs %.2fx (ok)\n%!" cur
          prev_s
    | Some cur, None ->
      Printf.printf
        "regression gate: no prior selfmaint speedup (recorded %.2fx)\n%!"
        cur
    | None, _ ->
      Printf.printf "regression gate: no selfmaint speedup to check\n%!");
    (* Round trips per update must stay pinned at zero — that is the
       whole point of the subsystem. *)
    match List.assoc_opt "selfmaint_roundtrips_per_update" all_metrics with
    | Some rtpu when rtpu > 0.0 ->
      Printf.printf
        "REGRESSION: selfmaint issued %.3f source round trips per update \
         (must be 0)\n\
         %!"
        rtpu;
      exit 1
    | Some _ ->
      Printf.printf "regression gate: selfmaint round trips/update = 0 (ok)\n%!"
    | None ->
      Printf.printf "regression gate: no selfmaint round-trip count to check\n%!"
  end;
  (* Merge fast-path headline: how much further the fused path pushes
     the merge's saturation point past per-message merging. Bigger is
     better — the gate trips when the speedup falls below 1/factor of
     the last recorded run (the fast path stopped amortizing service
     events, or per-message merging mysteriously sped up). Simulated
     time, so any move past the factor is structural. *)
  if !check_regression then begin
    let current = List.assoc_opt "merge_saturation_speedup" all_metrics in
    match (current, previous_merge) with
    | Some cur, Some (prev_s, prev_rev) ->
      if prev_s > 0.0 && cur < prev_s /. regression_factor then begin
        Printf.printf
          "REGRESSION: merge saturation speedup at %.2fx, down from %.2fx \
           recorded at %s (gate: %.1fx)\n\
           %!"
          cur prev_s prev_rev regression_factor;
        exit 1
      end
      else
        Printf.printf
          "regression gate: merge saturation speedup %.2fx vs %.2fx (ok)\n%!"
          cur prev_s
    | Some cur, None ->
      Printf.printf
        "regression gate: no prior merge saturation speedup (recorded \
         %.2fx)\n\
         %!"
        cur
    | None, _ ->
      Printf.printf "regression gate: no merge saturation speedup to check\n%!"
  end
