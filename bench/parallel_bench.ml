(* P: multicore maintenance-runtime ablations. Three sweeps land in
   BENCH_parallel.json (format documented in EXPERIMENTS.md):

   - kernel: the compiled hash-join kernel on the 10k-tuple workloads at
     domain count x shard count, against the sequential kernel, with a
     bag-equality assertion on every point;
   - end-to-end: the full system on a 10k-tuple fan-out workload (six
     join views over the same 10k-row R |><| S) at 1/2/4 domains — wall
     clock, an identical-results assertion across domain counts, and the
     [model_overlap] latency model giving the simulated speedup of
     overlapped per-view computation over the strawman's sum (the
     headline speedup_vs_sequential_at_4_domains);
   - merge groups: Figure 3's partitioned merge over four disjoint view
     families at 1/2/4 groups, each group's merge work on its own domain
     and the merge deliberately loaded (benchmark P2 style).

   [host_cores] is reported honestly: on a single-core host the wall
   clock cannot improve with domains, only the modeled overlap can —
   the determinism guarantee (identical commits, reads and verdicts at
   every domain count) is what the real-execution knob buys there.

   [parsmoke] is the fast deterministic variant wired to the `@par-smoke`
   dune alias: domains 1/2/4 must produce identical warehouse commits,
   served reads and oracle verdicts, on both the pipelined and the
   sequential-strawman runtimes and under a partitioned merge. Exits
   nonzero on any mismatch. *)

open Relational
open Whips

let host_cores = Domain.recommended_domain_count ()

let quick () = !Micro.quick

let time_min ~reps f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let exec_of ~domains ~shards =
  Parallel.Config.exec
    { Parallel.Config.domains; shards; model_overlap = false }

(* ---- kernel sweep: domains x shards on the 10k-tuple join ---- *)

type kernel_point = {
  k_domains : int;
  k_shards : int;
  eval_ms : float;
  delta_ms : float;
}

let kernel_grid = [ (1, 1); (2, 2); (4, 4); (4, 8) ]

let kernel_sweep () =
  let n = if quick () then 2_000 else 10_000 in
  let reps = if quick () then 1 else 3 in
  let db, expr, changes = Micro.delta_kernel_setup n in
  let plan = Query.Compiled.compile ~lookup:(Database.schema db) expr in
  let reference = Query.Compiled.eval_bag db plan in
  let reference_delta = Query.Delta.eval ~pre:db changes expr in
  let points =
    List.map
      (fun (k_domains, k_shards) ->
        let exec = exec_of ~domains:k_domains ~shards:k_shards in
        let got = Query.Compiled.eval_bag ~exec db plan in
        if not (Bag.equal got reference) then
          failwith
            (Printf.sprintf "sharded eval diverged at %dx%d" k_domains
               k_shards);
        let got_delta = Query.Delta.eval ~exec ~pre:db changes expr in
        if not (Signed_bag.equal got_delta reference_delta) then
          failwith
            (Printf.sprintf "sharded delta diverged at %dx%d" k_domains
               k_shards);
        let eval_ms =
          1000.0
          *. time_min ~reps (fun () -> Query.Compiled.eval_bag ~exec db plan)
        in
        let delta_ms =
          1000.0
          *. time_min ~reps (fun () ->
                 Query.Delta.eval ~exec ~pre:db changes expr)
        in
        { k_domains; k_shards; eval_ms; delta_ms })
      kernel_grid
  in
  (n, points)

(* ---- the fan-out workload: six join views over the same 10k rows ---- *)

let int_schema names = Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)

let random_bag_wide seed n ~range =
  let rng = Sim.Rng.create seed in
  let rec loop i acc =
    if i = 0 then acc
    else
      loop (i - 1)
        (Bag.add (Tuple.ints [ Sim.Rng.int rng range; Sim.Rng.int rng range ]) acc)
  in
  loop n Bag.empty

(* Every view joins R and S, so every transaction fans out to all six
   managers — the shape where overlapping per-view computation pays. *)
let fanout_scenario ~rows ~txns =
  let range = 2 * rows in
  let rs = int_schema [ "A"; "B" ]
  and ss = int_schema [ "B"; "C" ] in
  let joined = Query.Algebra.(join (base "R") (base "S")) in
  let sel p = Query.Algebra.select p joined in
  let views =
    [ Query.View.make "V1" joined;
      Query.View.make "V2" (sel (Query.Pred.lt "A" (Value.Int (range / 2))));
      Query.View.make "V3" (sel (Query.Pred.ge "A" (Value.Int (range / 2))));
      Query.View.make "V4" (sel (Query.Pred.lt "C" (Value.Int (range / 4))));
      Query.View.make "V5" (sel (Query.Pred.ge "C" (Value.Int (range / 4))));
      Query.View.make "V6" (Query.Algebra.project [ "A"; "C" ] joined) ]
  in
  let rng = Sim.Rng.create 31 in
  let tuple () = Tuple.ints [ Sim.Rng.int rng range; Sim.Rng.int rng range ] in
  let script =
    List.init txns (fun i ->
        let rel = if i mod 3 = 2 then "R" else "S" in
        [ Update.insert rel (tuple ()); Update.insert rel (tuple ()) ])
  in
  { Workload.Scenarios.name = Printf.sprintf "fanout-%dk" (rows / 1000);
    specs =
      [ { Source.Sources.source = "src1";
          relation = "R";
          init =
            Relation.with_contents (Relation.create rs)
              (random_bag_wide 1 rows ~range) };
        { Source.Sources.source = "src2";
          relation = "S";
          init =
            Relation.with_contents (Relation.create ss)
              (random_bag_wide 2 rows ~range) } ];
    views;
    script }

let run_system ?merge_groups ?reads ?latencies ~merge ~domains ~shards
    ~model_overlap scen =
  let latencies =
    Option.value latencies ~default:System.default_latencies
  in
  System.run
    { (System.default scen) with
      merge_kind = merge;
      arrival = System.Uniform 0.02;
      latencies;
      merge_groups;
      reads;
      parallel = { Parallel.Config.domains; shards; model_overlap };
      seed = 9 }

(* Everything a domain count could possibly perturb, besides wall time:
   commit/action counts, the simulated completion instant, and the final
   contents of every view. *)
let signature (r : System.result) =
  let m = r.System.metrics in
  ( Atomic.get m.Metrics.commits,
    Atomic.get m.Metrics.actions_applied,
    m.Metrics.completed_at,
    List.map
      (fun v -> System.view_contents r (Query.View.name v))
      r.System.config.System.scenario.Workload.Scenarios.views )

let signatures_equal (c1, a1, t1, views1) (c2, a2, t2, views2) =
  c1 = c2 && a1 = a2 && t1 = t2
  && List.length views1 = List.length views2
  && List.for_all2 Bag.equal views1 views2

(* ---- end-to-end: wall clock + identity + modeled overlap ---- *)

type e2e_point = {
  e_domains : int;
  e_wall_s : float;
  e_identical : bool;
}

type overlap_point = {
  o_domains : int;
  o_completed_s : float;
  o_speedup : float;
}

let domain_counts = [ 1; 2; 4 ]

let end_to_end () =
  let rows = if quick () then 2_000 else 10_000 in
  let txns = if quick () then 6 else 16 in
  let scen = fanout_scenario ~rows ~txns in
  let run ~domains ~model_overlap =
    run_system ~merge:System.Sequential ~domains ~shards:domains
      ~model_overlap scen
  in
  let baseline = run ~domains:1 ~model_overlap:false in
  let base_sig = signature baseline in
  let wall =
    List.map
      (fun d ->
        let t0 = Unix.gettimeofday () in
        let r = run ~domains:d ~model_overlap:false in
        let e_wall_s = Unix.gettimeofday () -. t0 in
        let e_identical = signatures_equal (signature r) base_sig in
        if not e_identical then
          failwith (Printf.sprintf "domains=%d diverged from sequential" d);
        { e_domains = d; e_wall_s; e_identical })
      domain_counts
  in
  let _, _, base_completed, base_views = base_sig in
  let overlap =
    List.map
      (fun d ->
        let r = run ~domains:d ~model_overlap:true in
        let _, _, completed, views = signature r in
        (* The latency model moves timestamps only, never contents. *)
        if not (List.for_all2 Bag.equal views base_views) then
          failwith "model_overlap changed view contents";
        { o_domains = d;
          o_completed_s = completed;
          o_speedup = base_completed /. completed })
      domain_counts
  in
  (scen, txns, base_completed, wall, overlap)

(* ---- merge groups: Figure 3 partitioned merge ---- *)

type group_point = {
  g_groups : int;
  g_domains : int;
  g_completed_s : float;
  g_wall_s : float;
}

(* Four independent view families over disjoint base pairs — the shape
   Figure 3 partitions. (Every named scenario's views share a relation,
   so they coarsen to a single group no matter what [merge_groups]
   asks for.) *)
let grouped_scenario ~families ~txns =
  let specs, views =
    List.split
      (List.init families (fun i ->
           let r = Printf.sprintf "R%d" i and s = Printf.sprintf "S%d" i in
           let rs = int_schema [ "A"; "B" ] and ss = int_schema [ "B"; "C" ] in
           let spec rel sch seed =
             { Source.Sources.source = Printf.sprintf "src%d" i;
               relation = rel;
               init =
                 Relation.with_contents (Relation.create sch)
                   (random_bag_wide seed 100 ~range:50) }
           in
           ( [ spec r rs (10 + i); spec s ss (20 + i) ],
             Query.View.make
               (Printf.sprintf "V%d" i)
               Query.Algebra.(join (base r) (base s)) )))
  in
  let rng = Sim.Rng.create 17 in
  let script =
    List.init txns (fun i ->
        [ Update.insert
            (Printf.sprintf "S%d" (i mod families))
            (Tuple.ints [ Sim.Rng.int rng 50; Sim.Rng.int rng 50 ]) ])
  in
  { Workload.Scenarios.name = Printf.sprintf "grouped-%d" families;
    specs = List.concat specs;
    views;
    script }

let merge_group_sweep () =
  let scen = grouped_scenario ~families:4 ~txns:16 in
  (* Load the merge the way benchmark P2 does — an expensive merge step
     is where partitioning it over groups (Figure 3) shows up in the
     completion time; at the default 0.5 ms it is never the bottleneck. *)
  let latencies = { System.default_latencies with merge = 0.02 } in
  let base = ref None in
  let points =
    List.concat_map
      (fun groups ->
        List.map
          (fun domains ->
            let t0 = Unix.gettimeofday () in
            let r =
              run_system ~merge:System.Auto ~merge_groups:groups ~latencies
                ~domains ~shards:domains ~model_overlap:false scen
            in
            let g_wall_s = Unix.gettimeofday () -. t0 in
            (match !base with
            | None -> base := Some (groups, signature r)
            | Some (g, s) when g = groups ->
              if not (signatures_equal s (signature r)) then
                failwith
                  (Printf.sprintf
                     "merge groups=%d diverged across domain counts" groups)
            | Some _ -> base := Some (groups, signature r));
            { g_groups = groups;
              g_domains = domains;
              g_completed_s = r.System.metrics.Metrics.completed_at;
              g_wall_s })
          [ 1; 4 ])
      [ 1; 2; 4 ]
  in
  points

(* ---- reporting ---- *)

let write_json ~path ~kernel_rows:(n, kpoints) ~e2e:(scen, txns, base, wall, overlap)
    ~groups =
  let oc = open_out path in
  let kernel_json =
    List.map
      (fun p ->
        Printf.sprintf
          "    { \"domains\": %d, \"shards\": %d, \"eval_join_ms\": %.3f, \
           \"delta_join_ms\": %.3f }"
          p.k_domains p.k_shards p.eval_ms p.delta_ms)
      kpoints
  in
  let wall_json =
    List.map
      (fun p ->
        Printf.sprintf
          "      { \"domains\": %d, \"wall_s\": %.3f, \
           \"identical_to_sequential\": %b }"
          p.e_domains p.e_wall_s p.e_identical)
      wall
  in
  let overlap_json =
    List.map
      (fun p ->
        Printf.sprintf
          "      { \"domains\": %d, \"completed_s\": %.4f, \
           \"speedup_vs_sequential\": %.2f }"
          p.o_domains p.o_completed_s p.o_speedup)
      overlap
  in
  let headline =
    List.fold_left
      (fun acc p -> if p.o_domains = 4 then p.o_speedup else acc)
      1.0 overlap
  in
  let group_json =
    List.map
      (fun p ->
        Printf.sprintf
          "    { \"groups\": %d, \"domains\": %d, \"completed_s\": %.4f, \
           \"wall_s\": %.3f }"
          p.g_groups p.g_domains p.g_completed_s p.g_wall_s)
      groups
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe parallel\",\n\
    \  \"quick\": %b,\n\
    \  \"host_cores\": %d,\n\
    \  \"note\": \"domains is a real-execution knob only: it never moves \
     simulated time or RNG streams, so identical_to_sequential asserts \
     byte-identical commits and completion instants. model_overlap is the \
     latency-model switch charging LPT makespan over the domain lanes \
     instead of the strawman's sum; on a %d-core host wall-clock speedup \
     from real domains is not expected.\",\n\
    \  \"kernel_join_rows\": %d,\n\
    \  \"kernel_sweep\": [\n%s\n  ],\n\
    \  \"end_to_end\": {\n\
    \    \"workload\": \"%s\",\n\
    \    \"views\": %d,\n\
    \    \"transactions\": %d,\n\
    \    \"sequential_completed_s\": %.4f,\n\
    \    \"wall_clock\": [\n%s\n    ],\n\
    \    \"modeled_overlap\": [\n%s\n    ],\n\
    \    \"speedup_vs_sequential_at_4_domains\": %.2f\n\
    \  },\n\
    \  \"merge_group_sweep\": [\n%s\n  ]\n\
     }\n"
    (quick ()) host_cores host_cores n
    (String.concat ",\n" kernel_json)
    scen.Workload.Scenarios.name
    (List.length scen.Workload.Scenarios.views)
    txns base
    (String.concat ",\n" wall_json)
    (String.concat ",\n" overlap_json)
    headline
    (String.concat ",\n" group_json);
  close_out oc

let run () =
  Tables.section "P: multicore maintenance runtime (domains x shards x groups)";
  let ((n, kpoints) as kernel_rows) = kernel_sweep () in
  Tables.print
    ~title:(Printf.sprintf "kernel: %d-tuple join, domains x shards" n)
    ~header:[ "domains"; "shards"; "eval join"; "delta join" ]
    (List.map
       (fun p ->
         [ string_of_int p.k_domains; string_of_int p.k_shards;
           Printf.sprintf "%.2f ms" p.eval_ms;
           Printf.sprintf "%.2f ms" p.delta_ms ])
       kpoints);
  let ((_, _, base, wall, overlap) as e2e) = end_to_end () in
  Tables.print
    ~title:
      (Printf.sprintf
         "end to end: six-view fan-out, wall clock (host has %d core%s)"
         host_cores (if host_cores = 1 then "" else "s"))
    ~header:[ "domains"; "wall"; "identical trace" ]
    (List.map
       (fun p ->
         [ string_of_int p.e_domains;
           Printf.sprintf "%.2f s" p.e_wall_s;
           (if p.e_identical then "yes" else "NO") ])
       wall);
  Tables.print
    ~title:
      (Printf.sprintf
         "modeled overlap (simulated; sequential sum = %.3f s)" base)
    ~header:[ "domains"; "completed"; "speedup" ]
    (List.map
       (fun p ->
         [ string_of_int p.o_domains;
           Printf.sprintf "%.3f s" p.o_completed_s;
           Printf.sprintf "%.2fx" p.o_speedup ])
       overlap);
  let groups = merge_group_sweep () in
  Tables.print
    ~title:"partitioned merge (4 disjoint view families, loaded merge)"
    ~header:[ "groups"; "domains"; "completed"; "wall" ]
    (List.map
       (fun p ->
         [ string_of_int p.g_groups; string_of_int p.g_domains;
           Printf.sprintf "%.3f s" p.g_completed_s;
           Printf.sprintf "%.2f s" p.g_wall_s ])
       groups);
  write_json ~path:"BENCH_parallel.json" ~kernel_rows ~e2e ~groups;
  Printf.printf "wrote BENCH_parallel.json\n%!"

(* ---- @par-smoke: the determinism oracle as a build check ---- *)

let read_signature (r : System.result) =
  match r.System.serving with
  | None -> []
  | Some s ->
    List.map
      (fun rec_ ->
        ( rec_.System.read_session,
          rec_.System.read_version,
          rec_.System.read_arrived,
          rec_.System.read_served,
          rec_.System.read_cache_hit,
          Bag.to_list rec_.System.read_result ))
      s.System.reads_served

let check name runs =
  match runs with
  | [] | [ _ ] -> true
  | (d0, r0) :: rest ->
    let s0 = signature r0
    and reads0 = read_signature r0
    and v0 = System.verdict r0 in
    List.for_all
      (fun (d, r) ->
        let ok =
          signatures_equal (signature r) s0
          && read_signature r = reads0
          && System.verdict r = v0
        in
        Printf.printf "par-smoke %-28s domains %d vs %d: %s\n%!" name d d0
          (if ok then "identical" else "DIVERGED");
        ok)
      rest

let parsmoke () =
  Tables.section "par-smoke: determinism across domain counts";
  let gen_scen =
    Workload.Generator.generate
      { Workload.Generator.default with
        seed = 11;
        n_relations = 4;
        n_views = 3;
        n_transactions = 20;
        initial_tuples = 6 }
  in
  let runs mk = List.map (fun d -> (d, mk d)) domain_counts in
  let ok_pipelined =
    check "pipelined+reads" @@ runs (fun d ->
        run_system ~merge:System.Auto ~reads:System.default_reads
          ~domains:d ~shards:d ~model_overlap:false gen_scen)
  in
  let ok_groups =
    check "partitioned-merge" @@ runs (fun d ->
        run_system ~merge:System.Auto ~merge_groups:3 ~domains:d ~shards:d
          ~model_overlap:false (grouped_scenario ~families:4 ~txns:12))
  in
  let small = fanout_scenario ~rows:600 ~txns:4 in
  let ok_sequential =
    check "sequential-strawman" @@ runs (fun d ->
        run_system ~merge:System.Sequential ~domains:d ~shards:d
          ~model_overlap:false small)
  in
  (* model_overlap must move timestamps only. *)
  let seq = run_system ~merge:System.Sequential ~domains:4 ~shards:4
      ~model_overlap:false small
  and ovl = run_system ~merge:System.Sequential ~domains:4 ~shards:4
      ~model_overlap:true small in
  let _, _, _, seq_views = signature seq and _, _, _, ovl_views = signature ovl in
  let ok_overlap =
    List.for_all2 Bag.equal seq_views ovl_views
    && seq.System.metrics.Metrics.completed_at
       > ovl.System.metrics.Metrics.completed_at
  in
  Printf.printf "par-smoke model-overlap: %s\n%!"
    (if ok_overlap then "contents identical, makespan < sum"
     else "VIOLATION");
  if ok_pipelined && ok_groups && ok_sequential && ok_overlap then
    Printf.printf "par-smoke: all runs identical across domain counts\n%!"
  else begin
    Printf.printf "par-smoke: FAILED\n%!";
    exit 1
  end
