(* Distributed warehouse benchmark and smoke.

   [run] sweeps shard count x tenant skew over the seeded multi-tenant
   workload and writes BENCH_dist.json. The headline is
   [tenant_scaling_ratio]: per-shard merge events per source update when
   the tenant population quadruples at a fixed shard count, relative to
   the base population. Sharding by tenant means each (single-tenant)
   update wakes exactly one shard, so the ratio should stay ~1.0 —
   growth in tenants spreads over the shards instead of multiplying
   every merge process's inbox.

   [distsmoke] backs the @dist-smoke alias: a deterministic check that
   shards 1, 2 and 4 serve byte-identical union contents (all equal to
   direct evaluation over the final source state), stay certified under
   a message-dropping fault plan with ARQ links, and keep the scaling
   ratio under 1.2. Exits nonzero on any divergence. *)

open Relational

let quick () = !Micro.quick

let workload ~tenants ~skew ~n_transactions =
  Workload.Tenants.generate
    { Workload.Tenants.default with tenants; skew; n_transactions; seed = 42 }

type cell = {
  shards : int;
  tenants : int;
  skew : float;
  events_per_update : float;
  mean_fanout : float;
  union_reads : int;
  certified : bool;
  complete : bool;
}

let run_cell ~shards ~tenants ~skew ~n_transactions =
  let w = workload ~tenants ~skew ~n_transactions in
  let r = Dist.System.run { (Dist.System.default ~shards w) with seed = 43 } in
  let certified =
    (not r.Dist.System.stuck)
    && Consistency.Checker.certified_distributed (Dist.System.certificate r)
  in
  let complete =
    List.for_all
      (fun (_, v) -> Consistency.Checker.at_least Consistency.Checker.Complete v)
      (Dist.System.shard_verdicts r)
  in
  ( { shards;
      tenants;
      skew;
      events_per_update = Dist.System.merge_events_per_update r;
      mean_fanout =
        Sim.Stats.Summary.mean r.Dist.System.metrics.Whips.Metrics.routed_shards;
      union_reads =
        Atomic.get r.Dist.System.metrics.Whips.Metrics.union_reads;
      certified;
      complete },
    r )

let cell_json c =
  Printf.sprintf
    "    { \"shards\": %d, \"tenants\": %d, \"skew\": %.1f,\n\
     \      \"events_per_update\": %.4f, \"mean_fanout\": %.4f,\n\
     \      \"union_reads\": %d, \"certified\": %b, \"complete\": %b }"
    c.shards c.tenants c.skew c.events_per_update c.mean_fanout c.union_reads
    c.certified c.complete

let write_json ~sweep ~scaling ~headline_events ~certified_all =
  let oc = open_out "BENCH_dist.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe dist\",\n\
    \  \"quick\": %b,\n\
    \  \"note\": \"simulated-time distributed warehouse: tenant-sharded \
     merge processes, cross-shard union views, certified global cuts\",\n\
    \  \"sweep\": [\n%s\n  ],\n\
    \  \"dist_merge_events_per_update\": %.4f,\n\
    \  \"tenant_scaling_ratio\": %.4f,\n\
    \  \"certified_all\": %b\n\
     }\n"
    (quick ())
    (String.concat ",\n" (List.map cell_json sweep))
    headline_events scaling certified_all;
  close_out oc;
  Printf.printf "wrote BENCH_dist.json\n%!"

let run () =
  Tables.section "dist: shard count x tenant skew";
  let n_transactions = if quick () then 32 else 96 in
  let shard_counts = if quick () then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let skews = if quick () then [ 0.0; 1.5 ] else [ 0.0; 1.0; 2.0 ] in
  let sweep =
    List.concat_map
      (fun shards ->
        List.map
          (fun skew ->
            fst (run_cell ~shards ~tenants:8 ~skew ~n_transactions))
          skews)
      shard_counts
  in
  Tables.print ~title:"per-shard merge load (8 tenants)"
    ~header:
      [ "shards"; "skew"; "events/update"; "fanout"; "reads"; "certified" ]
    (List.map
       (fun c ->
         [ string_of_int c.shards;
           Printf.sprintf "%.1f" c.skew;
           Printf.sprintf "%.3f" c.events_per_update;
           Printf.sprintf "%.2f" c.mean_fanout;
           string_of_int c.union_reads;
           string_of_bool (c.certified && c.complete) ])
       sweep);
  (* Tenant scaling at a fixed shard count: quadruple the tenant
     population and compare per-shard merge events per update. *)
  let base, _ = run_cell ~shards:4 ~tenants:4 ~skew:1.0 ~n_transactions in
  let scaled, _ = run_cell ~shards:4 ~tenants:16 ~skew:1.0 ~n_transactions in
  let scaling =
    if base.events_per_update > 0.0 then
      scaled.events_per_update /. base.events_per_update
    else 0.0
  in
  Tables.print ~title:"tenant scaling at 4 shards (4 -> 16 tenants)"
    ~header:[ "tenants"; "events/update"; "certified" ]
    (List.map
       (fun c ->
         [ string_of_int c.tenants;
           Printf.sprintf "%.3f" c.events_per_update;
           string_of_bool (c.certified && c.complete) ])
       [ base; scaled ]);
  Printf.printf "tenant_scaling_ratio: %.3f (flat load target: <= 1.2)\n%!"
    scaling;
  let certified_all =
    List.for_all (fun c -> c.certified && c.complete) (base :: scaled :: sweep)
  in
  let headline_events =
    match List.find_opt (fun c -> c.shards = 4 && c.skew > 0.0) sweep with
    | Some c -> c.events_per_update
    | None -> base.events_per_update
  in
  write_json ~sweep:(sweep @ [ base; scaled ]) ~scaling ~headline_events
    ~certified_all

(* --- @dist-smoke ------------------------------------------------- *)

let fault_plan =
  Workload.Fault_plan.union
    [ Workload.Fault_plan.random ~drop:0.1 ~duplicate:0.05 "integ->shard*";
      Workload.Fault_plan.random ~drop:0.1 "*->merge0" ]

let smoke_run ~shards w =
  Dist.System.run
    { (Dist.System.default ~shards w) with
      seed = 43;
      fault_plan;
      reliability = Whips.System.Acked Sim.Reliable.default_params }

let distsmoke () =
  Tables.section "dist-smoke: shards 1/2/4 trace-equivalent";
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.printf "  FAIL %s\n%!" msg)
      fmt
  in
  let w = workload ~tenants:6 ~skew:1.0 ~n_transactions:40 in
  let runs = List.map (fun shards -> smoke_run ~shards w) [ 1; 2; 4 ] in
  List.iter
    (fun (r : Dist.System.result) ->
      let shards = r.Dist.System.config.Dist.System.shards in
      if r.Dist.System.stuck then fail "shards=%d: run did not drain" shards;
      if not (Consistency.Checker.certified_distributed (Dist.System.certificate r))
      then
        fail "shards=%d: %a" shards
          (fun () c -> Fmt.str "%a" Consistency.Checker.pp_distributed c)
          (Dist.System.certificate r);
      List.iter
        (fun (s, v) ->
          if not (Consistency.Checker.at_least Consistency.Checker.Complete v)
          then fail "shards=%d: shard %d below Complete" shards s)
        (Dist.System.shard_verdicts r))
    runs;
  (* Every shard count must serve the same final union contents, and
     those must equal direct evaluation over the final source state. *)
  (match runs with
  | (r1 : Dist.System.result) :: rest ->
    let views =
      r1.Dist.System.config.Dist.System.workload.Workload.Tenants.scenario
        .Workload.Scenarios.views
    in
    let expected (r : Dist.System.result) (u : Dist.Union_view.t) =
      let final = Source.Sources.current r.Dist.System.sources in
      List.fold_left
        (fun acc (_, leg) ->
          let v = List.find (fun v -> Query.View.name v = leg) views in
          Bag.union acc (Relation.contents (Query.View.materialize final v)))
        Bag.empty u.Dist.Union_view.legs
    in
    List.iter
      (fun (u : Dist.Union_view.t) ->
        let name = u.Dist.Union_view.name in
        let reference = Dist.System.union_contents r1 name in
        if not (Bag.equal reference (expected r1 u)) then
          fail "%s: shards=1 diverges from direct evaluation" name;
        List.iter
          (fun (r : Dist.System.result) ->
            if not (Bag.equal reference (Dist.System.union_contents r name))
            then
              fail "%s: shards=%d diverges from shards=1" name
                r.Dist.System.config.Dist.System.shards)
          rest)
      r1.Dist.System.unions
  | [] -> fail "no runs");
  (* The flat-load acceptance bound, deterministically. *)
  let base, _ = run_cell ~shards:4 ~tenants:4 ~skew:1.0 ~n_transactions:32 in
  let scaled, _ = run_cell ~shards:4 ~tenants:16 ~skew:1.0 ~n_transactions:32 in
  let ratio =
    if base.events_per_update > 0.0 then
      scaled.events_per_update /. base.events_per_update
    else infinity
  in
  if ratio > 1.2 then
    fail "tenant scaling ratio %.3f exceeds 1.2 (merge load not flat)" ratio
  else
    Printf.printf "  tenant scaling ratio %.3f (<= 1.2)\n%!" ratio;
  if !failures = 0 then
    Printf.printf
      "dist-smoke OK: shards 1/2/4 certified and trace-equivalent\n%!"
  else begin
    Printf.printf "dist-smoke: %d failure(s)\n%!" !failures;
    exit 1
  end
