(* @col-smoke: the columnar kernels must be observably invisible.

   Every pinned paper scenario (plus one generated workload) runs twice
   — columnar kernels forced on and forced off — on both runtimes (the
   pipelined merge and the sequential strawman) and at 1 and 4 domains,
   and the complete trace must be identical: commit and action counts,
   the simulated completion instant, the final contents of every view,
   every served read (session, version, instants, cache hit, result),
   and the consistency verdict. Exits nonzero on any divergence; wired
   to `dune build @col-smoke`, which ci.sh runs. *)

open Relational
open Whips

let with_columnar flag f =
  let saved = !Columnar.enabled in
  Columnar.enabled := flag;
  Fun.protect ~finally:(fun () -> Columnar.enabled := saved) f

let trace ~columnar ~merge ~domains scen =
  with_columnar columnar (fun () ->
      Parallel_bench.run_system ~merge ~domains ~shards:domains
        ~model_overlap:false ~reads:System.default_reads scen)

let merge_name = function
  | System.Sequential -> "sequential"
  | _ -> "pipelined"

let check scen =
  let configs =
    List.concat_map
      (fun merge -> List.map (fun d -> (merge, d)) [ 1; 4 ])
      [ System.Auto; System.Sequential ]
  in
  let results =
    List.map
      (fun (merge, domains) ->
        let on = trace ~columnar:true ~merge ~domains scen
        and off = trace ~columnar:false ~merge ~domains scen in
        let ok =
          Parallel_bench.signatures_equal (Parallel_bench.signature on)
            (Parallel_bench.signature off)
          && Parallel_bench.read_signature on
             = Parallel_bench.read_signature off
          && System.verdict on = System.verdict off
        in
        Printf.printf "col-smoke %-14s %-10s domains %d: %s\n%!"
          scen.Workload.Scenarios.name (merge_name merge) domains
          (if ok then "identical" else "DIVERGED");
        ok)
      configs
  in
  List.for_all Fun.id results

let run () =
  Tables.section
    "col-smoke: columnar and boxed kernels must produce identical traces";
  let generated =
    Workload.Generator.generate
      { Workload.Generator.default with
        seed = 23;
        n_relations = 4;
        n_views = 3;
        n_transactions = 12;
        initial_tuples = 6 }
  in
  let scens = Workload.Scenarios.all @ [ generated ] in
  let results = List.map check scens in
  if List.for_all Fun.id results then
    Printf.printf "col-smoke OK: %d scenarios identical on both kernels\n%!"
      (List.length scens)
  else begin
    Printf.printf "col-smoke FAILED: columnar and boxed traces diverged\n%!";
    exit 1
  end
