(* S: snapshot-serving experiments. How does the serving layer behave as
   the read:write ratio grows, what does the versioned result cache buy,
   and how do the session guarantees trade staleness against cache reuse
   under SPA and PA? Results land in BENCH_serve.json (format documented
   in EXPERIMENTS.md).

   [servesmoke] is the fast deterministic variant wired to the
   `@serve-smoke` dune alias: a small read/write mix where every served
   read is replayed through the naive evaluator over the exact snapshot
   it was served from, cache on and off must be observably identical,
   every served snapshot must pass the consistency checker, and monotonic
   sessions must never travel backwards. Exits nonzero on any mismatch. *)

open Whips

let scenario ~seed =
  Workload.Generator.generate
    { Workload.Generator.default with
      seed;
      n_relations = 4;
      n_views = 3;
      n_transactions = 30;
      initial_tuples = 6 }

let update_rate = 60.0

let serving (r : System.result) =
  match r.System.serving with
  | Some s -> s
  | None -> failwith "serving not attached"

(* One run at [ratio] reads per source write. [pin_hit_latency] gives
   cache hits the same service-time distribution as misses — the smoke
   pass needs cache-on and cache-off runs to serve at identical instants
   (and thus versions) for its value-transparency check; the sweep keeps
   the realistic cheap-hit model. *)
let run_point ?(merge = System.Auto) ?sessions ?(seed = 7)
    ?(pin_hit_latency = false) ~ratio ~cache scen =
  let reads =
    { System.default_reads with
      read_arrival = System.Poisson (ratio *. update_rate);
      n_reads =
        max 10 (int_of_float (ratio *. float_of_int (List.length scen.Workload.Scenarios.script)));
      read_cache = cache;
      sessions =
        (match sessions with
        | Some s -> s
        | None -> System.default_reads.System.sessions) }
  in
  let latencies =
    if pin_hit_latency then
      { System.default_latencies with
        read_hit = System.default_latencies.System.read }
    else System.default_latencies
  in
  System.run
    { (System.default scen) with
      merge_kind = merge;
      arrival = System.Poisson update_rate;
      latencies;
      reads = Some reads;
      seed }

let hit_ratio (r : System.result) = Metrics.cache_hit_ratio r.metrics

let sweep_row ~ratio ~cache (r : System.result) =
  let m = r.System.metrics in
  [ Tables.f1 ratio;
    (if cache then "on" else "off");
    string_of_int (Atomic.get m.Metrics.reads);
    Tables.ms (Sim.Stats.Summary.mean m.Metrics.read_latency);
    Tables.ms (Sim.Stats.Summary.mean m.Metrics.served_staleness);
    Tables.f3 (hit_ratio r);
    string_of_int (Atomic.get m.Metrics.reads_clamped);
    Tables.f1 (Sim.Stats.Summary.mean m.Metrics.versions_retained);
    Tables.f1 (Sim.Stats.Summary.max m.Metrics.versions_pinned) ]

let sweep_json ~ratio ~cache (r : System.result) =
  let m = r.System.metrics in
  Printf.sprintf
    "    { \"read_write_ratio\": %.1f, \"cache\": %b, \"reads\": %d, \
     \"mean_read_latency_ms\": %.3f, \"mean_served_staleness_ms\": %.3f, \
     \"cache_hit_ratio\": %.3f, \"reads_clamped\": %d, \
     \"mean_versions_retained\": %.2f, \"max_versions_pinned\": %.1f }"
    ratio cache (Atomic.get m.Metrics.reads)
    (1000.0 *. Sim.Stats.Summary.mean m.Metrics.read_latency)
    (1000.0 *. Sim.Stats.Summary.mean m.Metrics.served_staleness)
    (hit_ratio r) (Atomic.get m.Metrics.reads_clamped)
    (Sim.Stats.Summary.mean m.Metrics.versions_retained)
    (Sim.Stats.Summary.max m.Metrics.versions_pinned)

(* ---- served-snapshot consistency, shared with the smoke pass ---- *)

(* Served snapshots sorted by version and deduplicated are a subsequence
   of the warehouse commit chain; prefixed with ws_0 and capped with the
   final state (the checker requires histories to end at ss_f; reads may
   have stopped before the last commits) they must be strongly consistent
   whenever the merge kept MVC. *)
let served_consistent (r : System.result) =
  let sorted =
    List.sort_uniq
      (fun a b -> compare a.System.read_version b.System.read_version)
      (serving r).System.reads_served
  in
  let served =
    List.filter_map
      (fun rec_ ->
        if rec_.System.read_version = 0 then None
        else Some rec_.System.read_state)
      sorted
  in
  let max_version =
    List.fold_left (fun acc rec_ -> max acc rec_.System.read_version) 0 sorted
  in
  let served =
    if max_version < Warehouse.Store.commit_count r.System.store then
      served @ [ Warehouse.Store.snapshot r.System.store ]
    else served
  in
  let v =
    Consistency.Checker.check
      ~views:r.System.config.System.scenario.Workload.Scenarios.views
      ~transactions:r.System.transactions
      ~source_states:(Source.Sources.states r.System.sources)
      ~warehouse_states:(Warehouse.Store.initial r.System.store :: served)
  in
  Consistency.Checker.at_least Consistency.Checker.Strong v

(* ---- merge x guarantee matrix ---- *)

let guarantees =
  [ Serve.Session.Latest; Serve.Session.Monotonic_reads;
    Serve.Session.Bounded_staleness 0.05 ]

let matrix_cell ~merge ~merge_name g scen =
  let r =
    run_point ~merge ~sessions:[ (g, 4) ] ~seed:17 ~ratio:4.0 ~cache:true scen
  in
  let m = r.System.metrics in
  let row =
    [ merge_name; Serve.Session.guarantee_name g;
      Tables.ms (Sim.Stats.Summary.mean m.Metrics.served_staleness);
      Tables.f3 (hit_ratio r);
      string_of_int (Atomic.get m.Metrics.reads_clamped);
      (if served_consistent r then "consistent" else "VIOLATION") ]
  in
  let json =
    Printf.sprintf
      "    { \"merge\": \"%s\", \"guarantee\": \"%s\", \
       \"mean_served_staleness_ms\": %.3f, \"cache_hit_ratio\": %.3f, \
       \"reads_clamped\": %d, \"served_consistent\": %b }"
      merge_name
      (Serve.Session.guarantee_name g)
      (1000.0 *. Sim.Stats.Summary.mean m.Metrics.served_staleness)
      (hit_ratio r) (Atomic.get m.Metrics.reads_clamped) (served_consistent r)
  in
  (row, json)

(* ---- read-path microbenchmark: naive vs compiled vs cached ---- *)

let time_per ~reps f =
  ignore (f ());
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

(* A 10k-tuple fact view joined against a 100-tuple dimension view: the
   naive evaluator's nested-loop join scans 10^6 pairs per read, the
   compiled kernel hash-joins, and the result cache reduces a repeat read
   to a lookup. *)
let read_path_db () =
  let rng = Sim.Rng.create 42 in
  let fact =
    Relational.Bag.of_list
      (List.init 10_000 (fun _ ->
           Relational.Tuple.ints
             [ Sim.Rng.int rng 100; Sim.Rng.int rng 1000 ]))
  in
  let dim =
    Relational.Bag.of_list
      (List.init 100 (fun k -> Relational.Tuple.ints [ k; k * 7 ]))
  in
  let schema names =
    Relational.Schema.make
      (List.map (fun n -> (n, Relational.Value.Int_ty)) names)
  in
  Relational.Database.of_list
    [ ("fact",
       Relational.Relation.with_contents
         (Relational.Relation.create (schema [ "k"; "v" ]))
         fact);
      ("dim",
       Relational.Relation.with_contents
         (Relational.Relation.create (schema [ "k"; "w" ]))
         dim) ]

let read_path_case ~quick ~name query =
  let db = read_path_db () in
  let naive_us =
    1e6
    *. time_per ~reps:(if quick then 1 else 3) (fun () ->
           Query.Eval.eval_bag ~naive:true db query)
  in
  let compiled_us =
    1e6
    *. time_per ~reps:(if quick then 20 else 100) (fun () ->
           Query.Compiled.eval_bag db
             (Query.Compiled.compile_memo
                ~lookup:(Relational.Database.schema db)
                query))
  in
  let vm = Serve.Version_manager.create db in
  let cache = Serve.Result_cache.create () in
  let session = Serve.Session.create ~cache ~guarantee:Serve.Session.Latest vm in
  let cached_us =
    1e6
    *. time_per
         ~reps:(if quick then 100 else 1000)
         (fun () -> (Serve.Session.read session ~now:1.0 query).Serve.Session.result)
  in
  (name, naive_us, compiled_us, cached_us)

let read_path_rows ~quick =
  let open Query.Algebra in
  [ read_path_case ~quick ~name:"fact |x| dim (10k x 100)"
      (join (base "fact") (base "dim"));
    read_path_case ~quick ~name:"sel(v<=100) fact (10k)"
      (select (Query.Pred.le "v" (Relational.Value.Int 100)) (base "fact")) ]

let read_path_row (name, naive_us, compiled_us, cached_us) =
  [ name;
    Printf.sprintf "%.0fus" naive_us;
    Printf.sprintf "%.0fus" compiled_us;
    Printf.sprintf "%.1fus" cached_us;
    Printf.sprintf "%.0fx" (naive_us /. cached_us) ]

let read_path_json (name, naive_us, compiled_us, cached_us) =
  Printf.sprintf
    "    { \"query\": \"%s\", \"naive_us\": %.1f, \"compiled_us\": %.1f, \
     \"cached_us\": %.2f, \"speedup_compiled\": %.1f, \"speedup_cached\": \
     %.1f }"
    name naive_us compiled_us cached_us (naive_us /. compiled_us)
    (naive_us /. cached_us)

(* ---- the full experiment ---- *)

let ratios = [ 0.5; 2.0; 8.0 ]

let run () =
  Tables.section
    "S: snapshot serving — read:write sweep, cache ablation, guarantees";
  let scen = scenario ~seed:11 in
  let sweep =
    List.concat_map
      (fun ratio ->
        List.map
          (fun cache -> (ratio, cache, run_point ~ratio ~cache scen))
          [ true; false ])
      ratios
  in
  Tables.print
    ~title:
      "read:write ratio x result cache (auto merge, default session mix)"
    ~header:
      [ "r:w"; "cache"; "reads"; "read latency"; "served staleness";
        "hit ratio"; "clamped"; "versions"; "max pinned" ]
    (List.map (fun (ratio, cache, r) -> sweep_row ~ratio ~cache r) sweep);
  Printf.printf
    "expected shape: staleness is flat in the ratio (reads never block\n\
     writes — MVCC); cache-on rows serve faster (hits draw the cheap\n\
     read_hit service time) without changing any served value.\n";
  let cells =
    List.concat_map
      (fun (merge, merge_name) ->
        List.map (fun g -> matrix_cell ~merge ~merge_name g scen) guarantees)
      [ (System.Force_spa, "spa"); (System.Force_pa, "pa") ]
  in
  Tables.print ~title:"merge x guarantee (4 sessions each, r:w = 4)"
    ~header:
      [ "merge"; "guarantee"; "served staleness"; "hit ratio"; "clamped";
        "served snapshots" ]
    (List.map fst cells);
  let read_path = read_path_rows ~quick:!Micro.quick in
  Tables.print ~title:"read path on a 10k-tuple view (per read)"
    ~header:[ "query"; "naive"; "compiled"; "cached"; "naive/cached" ]
    (List.map read_path_row read_path);
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe serve\",\n\
    \  \"update_rate\": %.1f,\n\
    \  \"ratio_sweep\": [\n%s\n  ],\n\
    \  \"merge_guarantee_matrix\": [\n%s\n  ],\n\
    \  \"read_path_10k\": [\n%s\n  ]\n\
     }\n"
    update_rate
    (String.concat ",\n"
       (List.map (fun (ratio, cache, r) -> sweep_json ~ratio ~cache r) sweep))
    (String.concat ",\n" (List.map snd cells))
    (String.concat ",\n" (List.map read_path_json read_path));
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n%!"

(* ---- deterministic smoke pass for `dune build @serve-smoke` ---- *)

let servesmoke () =
  Tables.section "serve smoke: cached read path vs naive oracle, per read";
  let scen = scenario ~seed:3 in
  let failures = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        incr failures;
        Printf.printf "FAIL: %s\n" msg)
      fmt
  in
  let with_cache =
    run_point ~seed:5 ~pin_hit_latency:true ~ratio:3.0 ~cache:true scen
  in
  let without =
    run_point ~seed:5 ~pin_hit_latency:true ~ratio:3.0 ~cache:false scen
  in
  if with_cache.System.stuck || without.System.stuck then fail "run stuck";
  let a = (serving with_cache).System.reads_served in
  let b = (serving without).System.reads_served in
  (* Every served read replayed through the naive evaluator over the
     exact snapshot it was served from. *)
  List.iter
    (fun r ->
      let expect =
        Query.Eval.eval_bag ~naive:true r.System.read_state r.System.read_query
      in
      if not (Relational.Bag.equal expect r.System.read_result) then
        fail "read (session %d, version %d) differs from the naive oracle"
          r.System.read_session r.System.read_version)
    (a @ b);
  (* The cache must be observably transparent. *)
  if List.length a <> List.length b then
    fail "cache changed the number of served reads"
  else
    List.iter2
      (fun x y ->
        if
          x.System.read_version <> y.System.read_version
          || not (Relational.Bag.equal x.System.read_result y.System.read_result)
        then fail "cache changed an observable result")
      a b;
  if Metrics.cache_hit_ratio with_cache.System.metrics <= 0.0 then
    fail "cache never hit";
  (* Monotonic sessions never travel backwards. *)
  let monotonic_ok records =
    let last = Hashtbl.create 8 in
    List.for_all
      (fun r ->
        match r.System.read_guarantee with
        | Serve.Session.Monotonic_reads ->
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt last r.System.read_session)
          in
          Hashtbl.replace last r.System.read_session
            (max prev r.System.read_version);
          r.System.read_version >= prev
        | _ -> true)
      records
  in
  if not (monotonic_ok a && monotonic_ok b) then
    fail "a monotonic session observed an older version";
  if not (served_consistent with_cache && served_consistent without) then
    fail "a served snapshot failed the consistency checker";
  Tables.print ~title:"smoke runs (r:w = 3, auto merge)"
    ~header:[ "cache"; "reads"; "hit ratio"; "clamped"; "served snapshots" ]
    [ [ "on"; string_of_int (Atomic.get with_cache.System.metrics.Metrics.reads);
        Tables.f3 (Metrics.cache_hit_ratio with_cache.System.metrics);
        string_of_int (Atomic.get with_cache.System.metrics.Metrics.reads_clamped);
        "consistent" ];
      [ "off"; string_of_int (Atomic.get without.System.metrics.Metrics.reads);
        "-";
        string_of_int (Atomic.get without.System.metrics.Metrics.reads_clamped);
        "consistent" ] ];
  if !failures > 0 then (
    Printf.printf "SERVE SMOKE FAILED: %d check(s)\n" !failures;
    exit 1)
  else
    Printf.printf "serve smoke ok: %d reads cross-checked\n%!"
      (List.length a + List.length b)
