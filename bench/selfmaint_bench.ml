(* Self-maintenance study: warehouse-local auxiliary data vs source
   compensation round trips, and the @selfmaint-smoke equivalence gate.

   [run] sweeps update rate over a star workload whose every update
   touches every view. The Strobe manager pays a source query round
   trip per update; the self-maintaining manager answers from its
   derived auxiliary projections — zero round trips — so freshness
   holds until the merge, not the source link, becomes the bound.
   Writes BENCH_selfmaint.json; headlines are
   [freshness_speedup_at_top_rate] (Strobe mean staleness over
   selfmaint mean staleness at the highest benched rate) and
   [roundtrips_per_update] (source queries per source transaction on
   the selfmaint runs, pinned at 0).

   [selfmaintsmoke] backs the @selfmaint-smoke alias: every pinned
   paper scenario (plus one generated workload) runs under Selfmaint_vm
   and Complete_vm at 1 and 4 domains, and the traces must be
   byte-identical — commits, action counts, the simulated completion
   instant, final view contents, every served read and the consistency
   verdict — with zero source queries on the selfmaint side. Exits
   nonzero on any divergence. *)

open Relational
open Whips

let quick () = !Micro.quick

(* ---- the star workload ----

   hot(key,hub) joins each wide dimension dim_k(hub, attr_k, pad1..4);
   V_k projects [key; attr_k] out of the join. Updates hit only [hot],
   so every transaction is relevant to every view, and the live set of
   each dimension is {hub, attr_k} — 2 of its 6 attributes — so the
   auxiliary store is a third of the replica store. *)

let star_scenario ~n_views ~txns ~seed =
  let rng = Sim.Rng.create seed in
  let schema names =
    Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)
  in
  let dim k = Printf.sprintf "dim%d" k in
  let attr k = Printf.sprintf "attr%d" k in
  let dim_row () =
    Tuple.ints (List.init 6 (fun _ -> Sim.Rng.int rng 5))
  in
  let specs =
    { Source.Sources.source = "hot";
      relation = "hot";
      init =
        Relation.of_tuples
          (schema [ "key"; "hub" ])
          (List.init 8 (fun _ ->
               Tuple.ints [ Sim.Rng.int rng 5; Sim.Rng.int rng 5 ])) }
    :: List.init n_views (fun k ->
           { Source.Sources.source = "dims";
             relation = dim k;
             init =
               Relation.of_tuples
                 (schema
                    ([ "hub"; attr k ]
                    @ List.init 4 (fun p -> Printf.sprintf "pad%d_%d" k p)))
                 (List.init 40 (fun _ -> dim_row ())) })
  in
  let views =
    List.init n_views (fun k ->
        Query.View.make
          (Printf.sprintf "V%d" k)
          Query.Algebra.(
            project [ "key"; attr k ] (join (base "hot") (base (dim k)))))
  in
  let script =
    List.init txns (fun _ ->
        [ Update.insert "hot"
            (Tuple.ints [ Sim.Rng.int rng 5; Sim.Rng.int rng 5 ]) ])
  in
  { Workload.Scenarios.name = "selfmaint-star"; specs; views; script }

let mean_staleness (r : System.result) =
  Sim.Stats.Summary.mean r.metrics.Metrics.staleness

let p95_staleness (r : System.result) =
  Sim.Stats.Summary.percentile r.metrics.Metrics.staleness 95.0

type cell = {
  rate : float;
  strobe_mean : float;
  strobe_p95 : float;
  strobe_rtpu : float;  (** source round trips per update *)
  strobe_drain : float;
  self_mean : float;
  self_p95 : float;
  self_rtpu : float;
  self_drain : float;
}

let run () =
  Tables.section
    "selfmaint: auxiliary projections vs source round trips (update-rate \
     sweep)";
  let txns = if quick () then 60 else 150 in
  let scen = star_scenario ~n_views:4 ~txns ~seed:17 in
  (* Top rate 80/s: the managers' own 10ms compute serializes past
     ~100 updates/s on BOTH systems, which would mask the source-link
     comparison; the cliff sweep below documents the saturated regime. *)
  let rates =
    if quick () then [ 10.0; 40.0; 80.0 ]
    else [ 5.0; 10.0; 20.0; 40.0; 80.0 ]
  in
  let n_txns = List.length scen.Workload.Scenarios.script in
  (* The regime self-maintenance targets: sources are remote operational
     systems, so a compensation query is a 100ms WAN round trip, while
     warehouse-local work stays at the default costs. *)
  let sweep vm rate =
    let r =
      System.run
        { (System.default scen) with
          vm_kind = vm;
          arrival = System.Poisson rate;
          latencies = { System.default_latencies with query_roundtrip = 0.1 };
          seed = 17 }
    in
    let queries = Atomic.get r.metrics.Metrics.source_queries in
    (r, float_of_int queries /. float_of_int n_txns)
  in
  let cells =
    List.map
      (fun rate ->
        let strobe, strobe_rtpu = sweep System.Strobe_vm rate in
        let self, self_rtpu = sweep System.Selfmaint_vm rate in
        { rate;
          strobe_mean = mean_staleness strobe;
          strobe_p95 = p95_staleness strobe;
          strobe_rtpu;
          strobe_drain = strobe.metrics.Metrics.completed_at;
          self_mean = mean_staleness self;
          self_p95 = p95_staleness self;
          self_rtpu;
          self_drain = self.metrics.Metrics.completed_at })
      rates
  in
  Tables.print
    ~title:
      "mean / p95 staleness (ms) and source round trips per update; \
       source query round trip 100ms"
    ~header:
      [ "rate/s"; "strobe mean"; "strobe p95"; "strobe rt/upd";
        "selfmaint mean"; "selfmaint p95"; "selfmaint rt/upd" ]
    (List.map
       (fun c ->
         [ string_of_int (int_of_float c.rate);
           Tables.ms c.strobe_mean; Tables.ms c.strobe_p95;
           Tables.f1 c.strobe_rtpu; Tables.ms c.self_mean;
           Tables.ms c.self_p95; Tables.f1 c.self_rtpu ])
       cells);
  (* Where does the self-maintaining pipeline bound out? With the source
     link off the path, the merge process is the next single-threaded
     server in line: at 2ms per message and every update fanning out to
     all views, staleness holds flat until the service rate is exceeded,
     then cliffs. *)
  let cliff_rates =
    if quick () then [ 40.0; 160.0; 640.0 ]
    else [ 20.0; 40.0; 80.0; 160.0; 320.0; 640.0 ]
  in
  let cliff =
    List.map
      (fun rate ->
        let r =
          System.run
            { (System.default scen) with
              vm_kind = System.Selfmaint_vm;
              arrival = System.Poisson rate;
              latencies = { System.default_latencies with merge = 0.002 };
              seed = 17 }
        in
        (rate, mean_staleness r, p95_staleness r,
         Sim.Stats.Summary.max r.metrics.Metrics.merge_held))
      cliff_rates
  in
  Tables.print
    ~title:"selfmaint merge-bound cliff: merge cost 2ms, no source path"
    ~header:[ "rate/s"; "mean staleness"; "p95"; "held ALs (max)" ]
    (List.map
       (fun (rate, mean, p95, held) ->
         [ string_of_int (int_of_float rate); Tables.ms mean; Tables.ms p95;
           Tables.f1 held ])
       cliff);
  (* Auxiliary storage vs the full-replica alternative, measured on one
     selfmaint run's metrics. *)
  let storage_run =
    System.run
      { (System.default scen) with
        vm_kind = System.Selfmaint_vm;
        arrival = System.All_at_once;
        seed = 17 }
  in
  let m = storage_run.metrics in
  let aux_cells = Atomic.get m.Metrics.aux_cells
  and saved = Atomic.get m.Metrics.aux_saved_cells in
  let saved_pct =
    100.0 *. float_of_int saved /. float_of_int (max 1 (aux_cells + saved))
  in
  Printf.printf
    "auxiliary storage: %d rows, %d cells (full replicas would hold %d \
     cells; %.0f%% saved)\n"
    (Atomic.get m.Metrics.aux_rows)
    aux_cells (aux_cells + saved) saved_pct;
  let top = List.nth cells (List.length cells - 1) in
  let speedup = top.strobe_mean /. top.self_mean in
  Printf.printf
    "at %g updates/s: strobe %s mean staleness (%.1f round trips/update), \
     selfmaint %s (%.0f round trips/update) — %.1fx fresher\n"
    top.rate (Tables.ms top.strobe_mean) top.strobe_rtpu
    (Tables.ms top.self_mean) top.self_rtpu speedup;
  Printf.printf
    "expected shape: strobe staleness carries the source round trip at \
     every rate; selfmaint\nanswers locally and stays near the compute \
     floor. With the source link off the path, the\nmerge is the next \
     bound — the cliff sweep shows staleness holding flat until the \
     merge\nservice rate is exceeded, then blowing up.\n";
  let oc = open_out "BENCH_selfmaint.json" in
  let cell_json c =
    Printf.sprintf
      "    { \"rate\": %g, \"strobe_mean_staleness_s\": %.6f, \
       \"strobe_p95_staleness_s\": %.6f, \"strobe_roundtrips_per_update\": \
       %.3f, \"strobe_drain_s\": %.4f, \"selfmaint_mean_staleness_s\": \
       %.6f, \"selfmaint_p95_staleness_s\": %.6f, \
       \"selfmaint_roundtrips_per_update\": %.3f, \"selfmaint_drain_s\": \
       %.4f }"
      c.rate c.strobe_mean c.strobe_p95 c.strobe_rtpu c.strobe_drain
      c.self_mean c.self_p95 c.self_rtpu c.self_drain
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe selfmaint\",\n\
    \  \"quick\": %b,\n\
    \  \"note\": \"self-maintaining view managers: derived auxiliary \
     projections answer every update locally; Strobe pays a source query \
     round trip per update\",\n\
    \  \"sweep\": [\n%s\n  ],\n\
    \  \"merge_cliff\": [\n%s\n  ],\n\
    \  \"freshness_speedup_at_top_rate\": %.4f,\n\
    \  \"roundtrips_per_update\": %.4f,\n\
    \  \"aux_rows\": %d,\n\
    \  \"aux_cells\": %d,\n\
    \  \"aux_saved_cells_pct\": %.1f\n\
     }\n"
    (quick ())
    (String.concat ",\n" (List.map cell_json cells))
    (String.concat ",\n"
       (List.map
          (fun (rate, mean, p95, held) ->
            Printf.sprintf
              "    { \"rate\": %g, \"mean_staleness_s\": %.6f, \
               \"p95_staleness_s\": %.6f, \"max_held_als\": %g }"
              rate mean p95 held)
          cliff))
    speedup top.self_rtpu
    (Atomic.get m.Metrics.aux_rows)
    aux_cells saved_pct;
  close_out oc;
  Printf.printf "wrote BENCH_selfmaint.json\n%!"

(* ---- @selfmaint-smoke ---- *)

let trace ~vm ~domains scen =
  System.run
    { (System.default scen) with
      vm_kind = vm;
      arrival = System.Uniform 0.02;
      reads = Some System.default_reads;
      parallel =
        { Parallel.Config.domains; shards = domains; model_overlap = false };
      seed = 9 }

let check scen =
  let results =
    List.map
      (fun domains ->
        let self = trace ~vm:System.Selfmaint_vm ~domains scen
        and complete = trace ~vm:System.Complete_vm ~domains scen in
        let queries = Atomic.get self.metrics.Metrics.source_queries in
        let ok =
          Parallel_bench.signatures_equal
            (Parallel_bench.signature self)
            (Parallel_bench.signature complete)
          && Parallel_bench.read_signature self
             = Parallel_bench.read_signature complete
          && System.verdict self = System.verdict complete
          && queries = 0
        in
        Printf.printf "selfmaint-smoke %-14s domains %d: %s%s\n%!"
          scen.Workload.Scenarios.name domains
          (if ok then "identical" else "DIVERGED")
          (if queries = 0 then ""
           else Printf.sprintf " (%d source queries!)" queries);
        ok)
      [ 1; 4 ]
  in
  List.for_all Fun.id results

let selfmaintsmoke () =
  Tables.section
    "selfmaint-smoke: self-maintaining managers must be trace-identical \
     to Complete_vm with zero source queries";
  let generated =
    Workload.Generator.generate
      { Workload.Generator.default with
        seed = 41;
        n_relations = 4;
        n_views = 3;
        n_transactions = 12;
        initial_tuples = 6 }
  in
  let scens = Workload.Scenarios.all @ [ generated ] in
  let results = List.map check scens in
  if List.for_all Fun.id results then
    Printf.printf
      "selfmaint-smoke OK: %d scenarios identical, zero source round \
       trips\n%!"
      (List.length scens)
  else begin
    Printf.printf
      "selfmaint-smoke FAILED: selfmaint and complete traces diverged\n%!";
    exit 1
  end
