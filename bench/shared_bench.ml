(* S: shared-plan delta engine ablations. Two sweeps land in
   BENCH_shared.json (format documented in EXPERIMENTS.md):

   - overlap: view-overlap degree x update count on a six-view workload.
     Degree d means the six views form 6/d families, each family d
     sigma/pi variants over its own R_f |><| S_f — so d views share one
     join subplan and a transaction fans out to d managers. Each point
     runs sharing off (every view evaluates its own compiled delta
     plan) and sharing on (the Shared.Engine DAG maintains the join
     once and serves the memoized delta to the other d-1 views, probing
     the materialized intermediate's index instead of re-hashing the
     pre-state). Work is measured as kernel rows — tuples the join
     kernel ingested or probed (Query.Compiled.kernel_rows), with the
     identical initialization work subtracted via a zero-transaction
     run — plus wall clock; every point asserts the final warehouse
     states and commit trace are identical to the unshared run.

   - refresh: the PR 3 serve read path (fact |><| dim view, a read mix
     against the versioned result cache) with the cache's
     invalidate-on-commit policy against incremental refresh
     (Serve.Result_cache.commit pushes each commit's narrow per-view
     deltas through the cached query's delta plan, keeping entries
     valid across commits). Hit ratio and mean read latency per mode.

   [sharedsmoke] is the fast deterministic variant wired to the
   `@shared-smoke` dune alias: sharing on must produce byte-identical
   commits, states and verdicts on both runtimes and across domain
   counts, must cut kernel rows by >= 2x at overlap degree 3, and the
   refresh path must actually refresh. Exits nonzero on any failure. *)

open Relational
open Whips

let quick () = !Micro.quick

(* ---- the overlap workload: six views, degree-d subplan sharing ---- *)

(* Families get disjoint base pairs, so subplans are shared within a
   family and nothing is shared across families. The delta side R_f is
   small and the probed side S_f big: an unshared delta pass re-hashes
   S_f per referring view, the engine probes its materialized index. *)
let overlap_scenario ~degree ~rows ~txns =
  assert (6 mod degree = 0);
  let families = 6 / degree in
  let range = 2 * rows in
  let rs = Parallel_bench.int_schema [ "A"; "B" ]
  and ss = Parallel_bench.int_schema [ "B"; "C" ] in
  let specs =
    List.concat
      (List.init families (fun f ->
           let spec rel sch seed n =
             { Source.Sources.source = Printf.sprintf "src%d" f;
               relation = rel;
               init =
                 Relation.with_contents (Relation.create sch)
                   (Parallel_bench.random_bag_wide seed n ~range) }
           in
           [ spec (Printf.sprintf "R%d" f) rs (10 + f) (max 10 (rows / 10));
             spec (Printf.sprintf "S%d" f) ss (50 + f) rows ]))
  in
  let views =
    List.concat
      (List.init families (fun f ->
           let joined =
             Query.Algebra.(
               join
                 (base (Printf.sprintf "R%d" f))
                 (base (Printf.sprintf "S%d" f)))
           in
           List.init degree (fun j ->
               let def =
                 if j = 0 then joined
                 else
                   Query.Algebra.select
                     (Query.Pred.lt "A" (Value.Int (range * j / degree)))
                     joined
               in
               Query.View.make (Printf.sprintf "V%d" ((f * degree) + j)) def)))
  in
  let rng = Sim.Rng.create 23 in
  let script =
    List.init txns (fun i ->
        let rel = Printf.sprintf "R%d" (i mod families) in
        let tuple () =
          Tuple.ints [ Sim.Rng.int rng range; Sim.Rng.int rng range ]
        in
        [ Update.insert rel (tuple ()); Update.insert rel (tuple ()) ])
  in
  { Workload.Scenarios.name = Printf.sprintf "overlap-d%d" degree;
    specs; views; script }

let run_overlap ~shared ~domains scen =
  System.run
    { (System.default scen) with
      merge_kind = System.Sequential;
      arrival = System.Uniform 0.02;
      parallel =
        { Parallel.Config.domains; shards = domains; model_overlap = false };
      shared_plans = shared;
      seed = 9 }

(* Kernel rows charged to delta maintenance alone: the same scenario
   with an empty script prices initialization (store materialization,
   engine DAG construction) and is subtracted out. *)
let delta_rows ~shared scen =
  let scen0 = { scen with Workload.Scenarios.script = [] } in
  let r0 = Query.Compiled.kernel_rows () in
  ignore (run_overlap ~shared ~domains:1 scen0);
  let init_rows = Query.Compiled.kernel_rows () - r0 in
  let r1 = Query.Compiled.kernel_rows () in
  let t0 = Unix.gettimeofday () in
  let res = run_overlap ~shared ~domains:1 scen in
  let wall = Unix.gettimeofday () -. t0 in
  let rows = Query.Compiled.kernel_rows () - r1 - init_rows in
  (res, rows, wall)

type overlap_point = {
  p_degree : int;
  p_txns : int;
  p_rows_off : int;
  p_rows_on : int;
  p_ratio : float;
  p_wall_off : float;
  p_wall_on : float;
  p_hits : int;
  p_misses : int;
  p_identical : bool;
}

let overlap_point ~degree ~rows ~txns =
  let scen = overlap_scenario ~degree ~rows ~txns in
  let off, p_rows_off, p_wall_off = delta_rows ~shared:false scen in
  let on, p_rows_on, p_wall_on = delta_rows ~shared:true scen in
  let p_identical =
    Parallel_bench.signatures_equal (Parallel_bench.signature off)
      (Parallel_bench.signature on)
  in
  if not p_identical then
    failwith
      (Printf.sprintf "sharing changed the trace at degree %d" degree);
  let m = on.System.metrics in
  { p_degree = degree; p_txns = txns; p_rows_off; p_rows_on;
    p_ratio =
      (if p_rows_on = 0 then Float.infinity
       else float_of_int p_rows_off /. float_of_int p_rows_on);
    p_wall_off; p_wall_on;
    p_hits = Atomic.get m.Metrics.shared_hits;
    p_misses = Atomic.get m.Metrics.shared_misses;
    p_identical }

let overlap_sweep () =
  let rows = if quick () then 1_000 else 5_000 in
  let txn_counts = if quick () then [ 6 ] else [ 12; 36 ] in
  List.concat_map
    (fun txns ->
      List.map
        (fun degree -> overlap_point ~degree ~rows ~txns)
        [ 1; 2; 3; 6 ])
    txn_counts

(* ---- refresh vs invalidate on the serve read path ---- *)

(* One wide fact |><| dim view; every commit touches it with a narrow
   delta, so invalidate-on-commit throws the whole cached result away
   while incremental refresh folds a couple of rows in and keeps the
   entry valid at the new version. *)
let refresh_scenario ~rows ~txns =
  let range = 2 * rows in
  let fs = Parallel_bench.int_schema [ "A"; "B" ]
  and ds = Parallel_bench.int_schema [ "B"; "C" ] in
  let views =
    [ Query.View.make "VJ" Query.Algebra.(join (base "F") (base "D")) ]
  in
  let rng = Sim.Rng.create 29 in
  let script =
    List.init txns (fun _ ->
        [ Update.insert "F"
            (Tuple.ints [ Sim.Rng.int rng range; Sim.Rng.int rng 64 ]) ])
  in
  { Workload.Scenarios.name = "refresh-fact-dim";
    specs =
      [ { Source.Sources.source = "src1";
          relation = "F";
          init =
            Relation.with_contents (Relation.create fs)
              (let rng = Sim.Rng.create 3 in
               let rec loop i acc =
                 if i = 0 then acc
                 else
                   loop (i - 1)
                     (Bag.add
                        (Tuple.ints
                           [ Sim.Rng.int rng range; Sim.Rng.int rng 64 ])
                        acc)
               in
               loop rows Bag.empty) };
        { Source.Sources.source = "src2";
          relation = "D";
          init =
            Relation.with_contents (Relation.create ds)
              (Bag.of_list
                 (List.init 64 (fun i -> Tuple.ints [ i; 1000 + i ]))) } ];
    views;
    script }

type refresh_point = {
  r_refresh : bool;
  r_reads : int;
  r_hit_ratio : float;
  r_latency_ms : float;
  r_refreshed : int;
  r_fallbacks : int;
  r_wall : float;
}

let refresh_point ~refresh ~n_reads scen =
  (* Latest-guarantee sessions only: refresh keeps the one cached
     entry valid at the head, which is where Latest reads land.
     Sessions pinning old versions (bounded staleness, as-of) are
     indifferent — advancing the entry past their version wins and
     loses the same reads — so they would only blur the comparison. *)
  let reads =
    { System.default_reads with
      sessions = [ (Serve.Session.Latest, 6) ];
      n_reads;
      read_arrival = System.Poisson 400.0;
      as_of_fraction = 0.0;
      cache_refresh = refresh;
      queries = [ Query.Algebra.base "VJ" ] }
  in
  let t0 = Unix.gettimeofday () in
  let r =
    System.run
      { (System.default scen) with
        merge_kind = System.Auto;
        arrival = System.Uniform 0.02;
        reads = Some reads;
        seed = 9 }
  in
  let r_wall = Unix.gettimeofday () -. t0 in
  let m = r.System.metrics in
  { r_refresh = refresh;
    r_reads = Atomic.get m.Metrics.reads;
    r_hit_ratio = Metrics.cache_hit_ratio m;
    r_latency_ms = 1000.0 *. Sim.Stats.Summary.mean m.Metrics.read_latency;
    r_refreshed = Atomic.get m.Metrics.cache_refreshes;
    r_fallbacks = Atomic.get m.Metrics.cache_refresh_fallbacks;
    r_wall }

let refresh_sweep () =
  let rows = if quick () then 1_000 else 10_000 in
  let txns = if quick () then 8 else 24 in
  let n_reads = if quick () then 60 else 240 in
  let scen = refresh_scenario ~rows ~txns in
  [ refresh_point ~refresh:false ~n_reads scen;
    refresh_point ~refresh:true ~n_reads scen ]

(* ---- reporting ---- *)

let headline points =
  (* kernel-rows reduction at overlap degree 3, largest update count. *)
  List.fold_left
    (fun acc p -> if p.p_degree = 3 then p.p_ratio else acc)
    1.0 points

let write_json ~path ~overlap ~refresh =
  let oc = open_out path in
  let overlap_json =
    List.map
      (fun p ->
        Printf.sprintf
          "    { \"degree\": %d, \"transactions\": %d, \"kernel_rows_off\": \
           %d, \"kernel_rows_on\": %d, \"rows_reduction\": %.2f, \
           \"wall_off_s\": %.3f, \"wall_on_s\": %.3f, \"shared_hits\": %d, \
           \"shared_misses\": %d, \"identical_trace\": %b }"
          p.p_degree p.p_txns p.p_rows_off p.p_rows_on p.p_ratio p.p_wall_off
          p.p_wall_on p.p_hits p.p_misses p.p_identical)
      overlap
  in
  let refresh_json =
    List.map
      (fun r ->
        Printf.sprintf
          "    { \"refresh\": %b, \"reads\": %d, \"cache_hit_ratio\": %.3f, \
           \"mean_read_latency_ms\": %.3f, \"refreshed\": %d, \
           \"refresh_fallbacks\": %d, \"wall_s\": %.3f }"
          r.r_refresh r.r_reads r.r_hit_ratio r.r_latency_ms r.r_refreshed
          r.r_fallbacks r.r_wall)
      refresh
  in
  Printf.fprintf oc
    "{\n\
    \  \"schema_version\": 1,\n\
    \  \"generated_by\": \"bench/main.exe shared\",\n\
    \  \"quick\": %b,\n\
    \  \"note\": \"kernel_rows counts tuples the join kernel ingested or \
     probed during delta maintenance (initialization subtracted); \
     identical_trace asserts sharing never changed commits, completion \
     instants or view contents. The refresh sweep compares the result \
     cache's invalidate-on-commit policy against incremental refresh on \
     the fact|><|dim read path.\",\n\
    \  \"overlap_sweep\": [\n%s\n  ],\n\
    \  \"rows_reduction_at_degree_3\": %.2f,\n\
    \  \"refresh_sweep\": [\n%s\n  ]\n\
     }\n"
    (quick ())
    (String.concat ",\n" overlap_json)
    (headline overlap)
    (String.concat ",\n" refresh_json);
  close_out oc

let run () =
  Tables.section "S: shared-plan delta engine (overlap x updates, refresh)";
  let overlap = overlap_sweep () in
  Tables.print
    ~title:"subplan sharing: kernel rows per run (six views)"
    ~header:
      [ "degree"; "txns"; "rows off"; "rows on"; "reduction"; "wall off";
        "wall on"; "memo" ]
    (List.map
       (fun p ->
         [ string_of_int p.p_degree; string_of_int p.p_txns;
           string_of_int p.p_rows_off; string_of_int p.p_rows_on;
           Printf.sprintf "%.2fx" p.p_ratio;
           Printf.sprintf "%.2f s" p.p_wall_off;
           Printf.sprintf "%.2f s" p.p_wall_on;
           Printf.sprintf "%d/%d" p.p_hits (p.p_hits + p.p_misses) ])
       overlap);
  let refresh = refresh_sweep () in
  Tables.print
    ~title:"result cache: invalidate-on-commit vs incremental refresh"
    ~header:
      [ "policy"; "reads"; "hit ratio"; "read latency"; "refreshed";
        "fallbacks"; "wall" ]
    (List.map
       (fun r ->
         [ (if r.r_refresh then "refresh" else "invalidate");
           string_of_int r.r_reads;
           Printf.sprintf "%.3f" r.r_hit_ratio;
           Printf.sprintf "%.3f ms" r.r_latency_ms;
           string_of_int r.r_refreshed; string_of_int r.r_fallbacks;
           Printf.sprintf "%.2f s" r.r_wall ])
       refresh);
  write_json ~path:"BENCH_shared.json" ~overlap ~refresh;
  Printf.printf "wrote BENCH_shared.json\n%!"

(* ---- @shared-smoke: semantics, determinism and the 2x floor ---- *)

let sharedsmoke () =
  Tables.section "shared-smoke: sharing is invisible and >= 2x cheaper";
  let failures = ref [] in
  let check name ok =
    Printf.printf "shared-smoke %-34s %s\n%!" name
      (if ok then "ok" else "FAILED");
    if not ok then failures := name :: !failures
  in
  (* Sequential runtime: sharing on/off identical, >= 2x fewer rows. *)
  let scen = overlap_scenario ~degree:3 ~rows:600 ~txns:6 in
  let off, rows_off, _ = delta_rows ~shared:false scen in
  let on, rows_on, _ = delta_rows ~shared:true scen in
  check "sequential: identical trace"
    (Parallel_bench.signatures_equal (Parallel_bench.signature off)
       (Parallel_bench.signature on));
  check
    (Printf.sprintf "kernel rows %d -> %d (>= 2x)" rows_off rows_on)
    (rows_on * 2 <= rows_off);
  (* Sharing on must stay deterministic across domain counts. *)
  let base = Parallel_bench.signature on in
  check "sequential: domains 1/2/4 identical"
    (List.for_all
       (fun d ->
         Parallel_bench.signatures_equal base
           (Parallel_bench.signature (run_overlap ~shared:true ~domains:d scen)))
       [ 2; 4 ]);
  (* Pipelined runtime: complete managers route through the engine. *)
  let run_pipe ~shared ~domains =
    System.run
      { (System.default scen) with
        merge_kind = System.Auto;
        arrival = System.Uniform 0.02;
        parallel =
          { Parallel.Config.domains; shards = domains; model_overlap = false };
        shared_plans = shared;
        seed = 9 }
  in
  let pipe_off = run_pipe ~shared:false ~domains:1 in
  let pipe_on = run_pipe ~shared:true ~domains:1 in
  check "pipelined: identical trace"
    (Parallel_bench.signatures_equal (Parallel_bench.signature pipe_off)
       (Parallel_bench.signature pipe_on));
  check "pipelined: engine was exercised"
    (Atomic.get pipe_on.System.metrics.Metrics.shared_hits > 0);
  check "pipelined: verdict unchanged"
    (System.verdict pipe_off = System.verdict pipe_on);
  check "pipelined: domains 1/2/4 identical"
    (List.for_all
       (fun d ->
         Parallel_bench.signatures_equal
           (Parallel_bench.signature pipe_on)
           (Parallel_bench.signature (run_pipe ~shared:true ~domains:d)))
       [ 2; 4 ]);
  (* Refresh path: entries actually advance in place. *)
  let refresh =
    refresh_point ~refresh:true ~n_reads:40 (refresh_scenario ~rows:400 ~txns:6)
  in
  check "cache refresh: entries advanced" (refresh.r_refreshed > 0);
  if !failures = [] then
    Printf.printf "shared-smoke: all checks passed\n%!"
  else begin
    Printf.printf "shared-smoke: FAILED (%s)\n%!"
      (String.concat ", " (List.rev !failures));
    exit 1
  end
