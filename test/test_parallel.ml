(* The multicore maintenance runtime. Three layers of evidence that
   [domains] is a pure real-execution knob:

   - pool semantics: ordered map, earliest-index exception propagation,
     reuse across submissions, deferred sequential spawn;
   - kernel equivalence: the hash-partitioned sharded join produces the
     same bag of counted tuples as the sequential kernel on random
     signed inputs (qcheck, above the shard threshold);
   - the determinism oracle: random full-system workloads run at
     domains 1/2/4 produce identical warehouse commits, served reads
     and consistency verdicts (qcheck). *)

open Relational

let case = Helpers.case

exception Boom of int

let pool_tests =
  [ case "map preserves input order" (fun () ->
        let pool = Parallel.Pool.get ~domains:4 in
        let xs = List.init 100 Fun.id in
        Alcotest.(check (list int))
          "squares in order"
          (List.map (fun x -> x * x) xs)
          (Parallel.Pool.map pool (fun x -> x * x) xs));
    case "map on a one-domain pool runs inline" (fun () ->
        let pool = Parallel.Pool.create ~domains:1 in
        Alcotest.(check int) "one lane" 1 (Parallel.Pool.domains pool);
        Alcotest.(check (list int))
          "still ordered" [ 2; 3; 4 ]
          (Parallel.Pool.map pool succ [ 1; 2; 3 ]);
        Parallel.Pool.shutdown pool);
    case "earliest-index exception wins" (fun () ->
        let pool = Parallel.Pool.get ~domains:4 in
        let f x = if x mod 3 = 0 then raise (Boom x) else x in
        Alcotest.check_raises "smallest failing index" (Boom 3) (fun () ->
            ignore (Parallel.Pool.map pool f [ 1; 2; 3; 4; 5; 6 ])));
    case "a failing batch still runs every task" (fun () ->
        let pool = Parallel.Pool.create ~domains:2 in
        let ran = Atomic.make 0 in
        (try
           ignore
             (Parallel.Pool.map pool
                (fun x ->
                  Atomic.incr ran;
                  if x = 0 then failwith "first")
                (List.init 20 Fun.id))
         with Failure _ -> ());
        Alcotest.(check int) "all 20 executed" 20 (Atomic.get ran);
        Parallel.Pool.shutdown pool);
    case "pool is reused across submissions" (fun () ->
        let pool = Parallel.Pool.create ~domains:3 in
        let before = Parallel.Pool.tasks_run pool in
        for _ = 1 to 5 do
          ignore (Parallel.Pool.map pool succ [ 1; 2; 3; 4 ])
        done;
        Alcotest.(check int)
          "20 tasks on the same domains" (before + 20)
          (Parallel.Pool.tasks_run pool);
        Parallel.Pool.shutdown pool);
    case "shutdown is idempotent, submission after it fails" (fun () ->
        let pool = Parallel.Pool.create ~domains:2 in
        Parallel.Pool.shutdown pool;
        Parallel.Pool.shutdown pool;
        Alcotest.check_raises "rejects work"
          (Invalid_argument "Parallel.Pool.map: pool is shut down")
          (fun () -> ignore (Parallel.Pool.map pool succ [ 1 ])));
    case "sequential spawn is deferred to await" (fun () ->
        let r = ref 0 in
        let fut = Parallel.Exec.spawn Parallel.Exec.sequential (fun () -> !r) in
        r := 42;
        Alcotest.(check int) "sees the later write" 42
          (Parallel.Exec.await fut);
        Alcotest.(check int) "await is idempotent" 42
          (Parallel.Exec.await fut));
    case "pooled spawn propagates the task's exception" (fun () ->
        let exec = Parallel.Exec.pooled (Parallel.Pool.get ~domains:4) in
        let fut = Parallel.Exec.spawn exec (fun () -> raise (Boom 7)) in
        Alcotest.check_raises "re-raised at await" (Boom 7) (fun () ->
            ignore (Parallel.Exec.await fut)));
    case "nested parallelism makes progress" (fun () ->
        (* A sharded-join-inside-a-future shape: futures that themselves
           map on the same pool; help-first scheduling must not deadlock
           even with a single worker domain. *)
        let pool = Parallel.Pool.get ~domains:2 in
        let exec = Parallel.Exec.pooled pool in
        let outer =
          Parallel.Exec.map exec
            (fun i ->
              List.fold_left ( + ) 0
                (Parallel.Exec.map exec (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
            [ 1; 2; 3; 4 ]
        in
        Alcotest.(check (list int))
          "nested sums" [ 36; 66; 96; 126 ] outer);
    case "makespan: lanes=1 is the sum, many lanes is the max" (fun () ->
        let samples = [ 3.0; 1.0; 4.0; 1.5 ] in
        Alcotest.(check (float 1e-9))
          "sum" 9.5
          (Parallel.makespan ~lanes:1 samples);
        Alcotest.(check (float 1e-9))
          "max" 4.0
          (Parallel.makespan ~lanes:8 samples);
        (* LPT on two lanes: 4 | 3, then 1.5 joins the 3-lane, 1 joins
           the 4-lane -> max(5, 4.5). *)
        Alcotest.(check (float 1e-9))
          "two lanes" 5.0
          (Parallel.makespan ~lanes:2 samples)) ]

(* ---- sharded join == sequential join (qcheck) ---- *)

(* Counted 2-column tuples joining on column 0; sizes push the total
   above [shard_threshold] so the pooled kernel actually shards. Output
   lists differ in order across shard counts, so compare as sorted
   multisets of (tuple, count) pairs. *)
let counted_gen =
  QCheck2.Gen.(
    list_size (int_range 500 800)
      (pair (Helpers.Gen.int_tuple ~arity:2 ~range:25) (int_range (-2) 3)))

let join_pos ~exec l r =
  Query.Compiled.join_counted_pos ~exec ~key_left:[| 0 |] ~key_right:[| 0 |]
    ~right_extra:[| 1 |] l r

let normalize pairs =
  List.sort
    (fun (t1, c1) (t2, c2) ->
      match Tuple.compare t1 t2 with 0 -> compare c1 c2 | n -> n)
    pairs

let sharded_join_tests =
  [ Helpers.qcheck ~count:30 "sharded join == sequential join"
      QCheck2.Gen.(pair counted_gen counted_gen)
      (fun (l, r) ->
        let reference =
          normalize (join_pos ~exec:Parallel.Exec.sequential l r)
        in
        List.for_all
          (fun shards ->
            let exec =
              Parallel.Exec.pooled ~shards (Parallel.Pool.get ~domains:4)
            in
            normalize (join_pos ~exec l r) = reference)
          [ 2; 4; 7 ]) ]

(* ---- coarsen bin-packing by weight ---- *)

let disjoint_view i =
  Query.View.make
    (Printf.sprintf "V%d" i)
    Query.Algebra.(base (Printf.sprintf "R%d" i))

let coarsen_tests =
  [ case "coarsen separates heavy views" (fun () ->
        (* Two heavy and two light singleton groups into two bins: any
           heaviest-first greedy puts the heavy pair apart. *)
        let weights = [ (0, 10); (1, 10); (2, 1); (3, 1) ] in
        let fine = List.map (fun (i, _) -> [ disjoint_view i ]) weights in
        let weight v =
          List.assoc
            (Scanf.sscanf (Query.View.name v) "V%d" Fun.id)
            weights
        in
        let groups = Mvc.Partition.coarsen ~weight ~max_groups:2 fine in
        Alcotest.(check int) "two groups" 2 (List.length groups);
        List.iter
          (fun g ->
            Alcotest.(check int)
              "one heavy view per group" 1
              (List.length
                 (List.filter (fun v -> weight v >= 10) g)))
          groups);
    Helpers.qcheck ~count:200 "coarsen never exceeds twice the ideal load"
      QCheck2.Gen.(
        pair (int_range 1 4)
          (list_size (int_range 1 12) (int_range 0 20)))
      (fun (k, weights) ->
        let fine = List.mapi (fun i _ -> [ disjoint_view i ]) weights in
        let weight v =
          List.nth weights (Scanf.sscanf (Query.View.name v) "V%d" Fun.id)
        in
        let groups = Mvc.Partition.coarsen ~weight ~max_groups:k fine in
        let load g = List.fold_left (fun a v -> a + weight v) 0 g in
        let total = List.fold_left ( + ) 0 weights in
        let heaviest = List.fold_left max 0 weights in
        (* Greedy LPT bound: no bin exceeds ideal share + one item. *)
        List.length groups <= k
        && List.for_all
             (fun g -> load g <= ((total + k - 1) / k) + heaviest)
             groups
        && List.fold_left (fun a g -> a + load g) 0 groups = total) ]

(* ---- the determinism oracle (qcheck over whole workloads) ---- *)

let scenario_gen =
  QCheck2.Gen.(
    int_range 0 10_000 >>= fun seed ->
    int_range 2 4 >>= fun n_views ->
    int_range 8 16 >>= fun n_transactions ->
    return
      (Workload.Generator.generate
         { Workload.Generator.default with
           seed;
           n_relations = 3;
           n_views;
           n_transactions;
           initial_tuples = 5 }))

let run_at scen ~domains =
  Whips.System.run
    { (Whips.System.default scen) with
      arrival = Whips.System.Uniform 0.02;
      reads = Some Whips.System.default_reads;
      parallel =
        { Parallel.Config.domains; shards = domains; model_overlap = false };
      seed = 3 }

(* Every externally visible output: commit and action counts, the final
   simulated instant, final view contents, the full served-read log and
   the oracle verdict. *)
let observation (r : Whips.System.result) =
  let m = r.Whips.System.metrics in
  let reads =
    match r.Whips.System.serving with
    | None -> []
    | Some s ->
      List.map
        (fun rec_ ->
          ( rec_.Whips.System.read_session,
            rec_.Whips.System.read_version,
            rec_.Whips.System.read_served,
            rec_.Whips.System.read_cache_hit,
            Bag.to_list rec_.Whips.System.read_result ))
        s.Whips.System.reads_served
  in
  ( ( Atomic.get m.Whips.Metrics.commits,
      Atomic.get m.Whips.Metrics.actions_applied,
      m.Whips.Metrics.completed_at ),
    List.map
      (fun v ->
        Bag.to_list (Whips.System.view_contents r (Query.View.name v)))
      r.Whips.System.config.Whips.System.scenario.Workload.Scenarios.views,
    reads,
    Whips.System.verdict r )

let oracle_tests =
  [ Helpers.qcheck ~count:12 "domains 1/2/4 observe identical runs"
      scenario_gen
      (fun scen ->
        let reference = observation (run_at scen ~domains:1) in
        List.for_all
          (fun d -> observation (run_at scen ~domains:d) = reference)
          [ 2; 4 ]) ]

let tests = pool_tests @ sharded_join_tests @ coarsen_tests @ oracle_tests
