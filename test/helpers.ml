(* Shared test utilities: alcotest testables, tuple/schema shorthands, and
   qcheck generators over the relational domain. *)

open Relational

let bag = Alcotest.testable Bag.pp Bag.equal

let signed_bag = Alcotest.testable Signed_bag.pp Signed_bag.equal

let tuple = Alcotest.testable Tuple.pp Tuple.equal

let schema = Alcotest.testable Schema.pp Schema.equal

let relation = Alcotest.testable Relation.pp Relation.equal

let value = Alcotest.testable Value.pp Value.equal

let ints = Tuple.ints

let int_schema names = Schema.make (List.map (fun n -> (n, Value.Int_ty)) names)

let bag_of lists = Bag.of_list (List.map ints lists)

let rel schema lists = Relation.of_tuples schema (List.map ints lists)

let case name f = Alcotest.test_case name `Quick f

(* Run [f] with the columnar kernels forced on or off, restoring the
   switch afterwards — the columnar-vs-boxed oracles compare both paths
   in one process. *)
let with_columnar flag f =
  let saved = !Columnar.enabled in
  Columnar.enabled := flag;
  Fun.protect ~finally:(fun () -> Columnar.enabled := saved) f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* qcheck generators *)

module Gen = struct
  open QCheck2.Gen

  let small_value =
    oneof
      [ return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) (int_range (-5) 5);
        map (fun s -> Value.String s) (string_size ~gen:(char_range 'a' 'c') (int_range 0 2)) ]

  let int_tuple ~arity ~range =
    map Tuple.ints (list_size (return arity) (int_range 0 (range - 1)))

  let small_bag ~arity ~range =
    map Bag.of_list (list_size (int_range 0 8) (int_tuple ~arity ~range))

  let small_signed ~arity ~range =
    map Signed_bag.of_list
      (list_size (int_range 0 8)
         (pair (int_tuple ~arity ~range) (int_range (-3) 3)))
end

(* A tiny random database + expression pair for delta-vs-recompute
   property tests: chain schema R0(a0,a1), R1(a1,a2), R2(a2,a3). *)
module Delta_domain = struct
  open QCheck2.Gen

  let relations = [ "R0"; "R1"; "R2" ]

  let schema_of k = int_schema [ Printf.sprintf "a%d" k; Printf.sprintf "a%d" (k + 1) ]

  let db_gen =
    let rel_gen k =
      map
        (fun tuples ->
          Relation.with_contents (Relation.create (schema_of k)) tuples)
        (Gen.small_bag ~arity:2 ~range:4)
    in
    map
      (fun (r0, (r1, r2)) ->
        Database.of_list [ ("R0", r0); ("R1", r1); ("R2", r2) ])
      (pair (rel_gen 0) (pair (rel_gen 1) (rel_gen 2)))

  let changes_gen =
    (* Signed deltas whose deletions may exceed the db contents are legal
       inputs to Delta.eval but make apply floor; generate update lists
       against a concrete db instead to stay exact. *)
    let update_gen db =
      let rel_name = oneofl relations in
      rel_name >>= fun r ->
      let existing = Bag.to_list (Relation.contents (Database.find db r)) in
      let insert =
        map (fun t -> Update.insert r t) (Gen.int_tuple ~arity:2 ~range:4)
      in
      match existing with
      | [] -> insert
      | _ ->
        oneof
          [ insert;
            map (fun t -> Update.delete r t) (oneofl existing);
            map2
              (fun before after -> Update.modify r ~before ~after)
              (oneofl existing)
              (Gen.int_tuple ~arity:2 ~range:4) ]
    in
    fun db ->
      (* Thread the evolving database through so deletes and modifies
         always target live tuples. *)
      let rec chain db n acc =
        if n = 0 then return (List.rev acc)
        else
          update_gen db >>= fun u ->
          chain (Database.apply_update db u) (n - 1) (u :: acc)
      in
      int_range 1 5 >>= fun n -> chain db n []

  let expr_gen =
    let rel k = Query.Algebra.base (Printf.sprintf "R%d" k) in
    let leaf = map rel (int_range 0 2) in
    (* Predicates over a set of attribute indices known to exist in the
       expression they select over. *)
    let pred_on ks =
      map2
        (fun k v -> Query.Pred.le (Printf.sprintf "a%d" k) (Value.Int v))
        (oneofl ks) (int_range 0 3)
    in
    oneof
      [ leaf;
        (int_range 0 2 >>= fun k ->
         map
           (fun p -> Query.Algebra.select p (rel k))
           (pred_on [ k; k + 1 ]));
        return (Query.Algebra.join (rel 0) (rel 1));
        return (Query.Algebra.join_all [ rel 0; rel 1; rel 2 ]);
        return
          (Query.Algebra.project [ "a1"; "a2" ]
             (Query.Algebra.join (rel 0) (rel 1)));
        map
          (fun p -> Query.Algebra.select p (Query.Algebra.join (rel 1) (rel 2)))
          (pred_on [ 1; 2; 3 ]);
        return
          (Query.Algebra.union
             (Query.Algebra.project [ "a1" ] (rel 0))
             (Query.Algebra.project [ "a1" ] (rel 1))) ]
end
