open Relational
open Query

let case = Helpers.case

let rs = Helpers.int_schema [ "A"; "B" ]

let ss = Helpers.int_schema [ "B"; "C" ]

let db =
  Database.of_list
    [ ("R", Helpers.rel rs [ [ 1; 2 ] ]); ("S", Helpers.rel ss [ [ 2; 3 ] ]) ]

let insert_s = Delta.of_update (Update.insert "S" (Helpers.ints [ 2; 9 ]))

let tests =
  [ case "delta of base = the change" (fun () ->
        Alcotest.check Helpers.signed_bag "+1"
          (Signed_bag.singleton (Helpers.ints [ 2; 9 ]) 1)
          (Delta.eval ~pre:db insert_s (Algebra.base "S")));
    case "delta of unrelated base is zero" (fun () ->
        Alcotest.(check bool) "zero" true
          (Signed_bag.is_zero (Delta.eval ~pre:db insert_s (Algebra.base "R"))));
    case "delta of select filters the delta" (fun () ->
        let e = Algebra.(select (Pred.eq "C" (Value.Int 9)) (base "S")) in
        Alcotest.(check int) "+1 through" 1
          (Signed_bag.count (Delta.eval ~pre:db insert_s e) (Helpers.ints [ 2; 9 ]));
        let e' = Algebra.(select (Pred.eq "C" (Value.Int 3)) (base "S")) in
        Alcotest.(check bool) "filtered out" true
          (Signed_bag.is_zero (Delta.eval ~pre:db insert_s e')));
    case "delta of join: new tuple joins pre-state" (fun () ->
        let e = Algebra.(join (base "R") (base "S")) in
        Alcotest.check Helpers.signed_bag "joined"
          (Signed_bag.singleton (Helpers.ints [ 1; 2; 9 ]) 1)
          (Delta.eval ~pre:db insert_s e));
    case "delta of join with both sides changing includes dAxdB" (fun () ->
        let changes =
          Delta.changes_of_list
            [ ("R", Signed_bag.singleton (Helpers.ints [ 5; 7 ]) 1);
              ("S", Signed_bag.singleton (Helpers.ints [ 7; 7 ]) 1) ]
        in
        let e = Algebra.(join (base "R") (base "S")) in
        let d = Delta.eval ~pre:db changes e in
        Alcotest.(check int) "cross term present" 1
          (Signed_bag.count d (Helpers.ints [ 5; 7; 7 ])));
    case "delta of delete produces negative counts" (fun () ->
        let del = Delta.of_update (Update.delete "S" (Helpers.ints [ 2; 3 ])) in
        let e = Algebra.(join (base "R") (base "S")) in
        Alcotest.check Helpers.signed_bag "-1"
          (Signed_bag.singleton (Helpers.ints [ 1; 2; 3 ]) (-1))
          (Delta.eval ~pre:db del e));
    case "delta of union sums" (fun () ->
        let e = Algebra.(union (project [ "B" ] (base "R")) (project [ "B" ] (base "S"))) in
        let d = Delta.eval ~pre:db insert_s e in
        Alcotest.(check int) "+1 on [2]" 1 (Signed_bag.count d (Helpers.ints [ 2 ])));
    case "delta of rename passes through" (fun () ->
        let e = Algebra.(rename [ ("C", "Z") ] (base "S")) in
        Alcotest.(check int) "+1" 1
          (Signed_bag.count (Delta.eval ~pre:db insert_s e) (Helpers.ints [ 2; 9 ])));
    case "of_transactions combines batches" (fun () ->
        let t1 = Update.Transaction.single ~id:1 ~source:"s" (Update.insert "S" (Helpers.ints [ 9; 9 ])) in
        let t2 = Update.Transaction.single ~id:2 ~source:"s" (Update.delete "S" (Helpers.ints [ 9; 9 ])) in
        let changes = Delta.of_transactions [ t1; t2 ] in
        Alcotest.(check bool) "cancels" true
          (Signed_bag.is_zero (Delta.change_for changes "S")));
    case "changed_relations omits zero deltas" (fun () ->
        let t1 = Update.Transaction.single ~id:1 ~source:"s" (Update.insert "S" (Helpers.ints [ 9; 9 ])) in
        let t2 = Update.Transaction.single ~id:2 ~source:"s" (Update.delete "S" (Helpers.ints [ 9; 9 ])) in
        Alcotest.(check (list string)) "none" []
          (Delta.changed_relations (Delta.of_transactions [ t1; t2 ])));
    case "relevant is syntactic" (fun () ->
        Alcotest.(check bool) "S relevant" true
          (Delta.relevant insert_s (Algebra.base "S"));
        Alcotest.(check bool) "R not" false
          (Delta.relevant insert_s (Algebra.base "R")));
    (* The key incremental-maintenance invariant, on random databases,
       update batches and expressions. *)
    Helpers.qcheck ~count:300 "apply delta == recompute"
      QCheck2.Gen.(
        Helpers.Delta_domain.db_gen >>= fun db ->
        Helpers.Delta_domain.changes_gen db >>= fun updates ->
        Helpers.Delta_domain.expr_gen >>= fun expr ->
        return (db, updates, expr))
      (fun (pre, updates, expr) ->
        let txn = Update.Transaction.make ~id:1 ~source:"s" updates in
        let changes = Delta.of_transaction txn in
        let post = Database.apply_transaction pre txn in
        let delta = Delta.eval ~pre changes expr in
        let before = Eval.eval_bag pre expr in
        let after = Eval.eval_bag post expr in
        Bag.equal (Signed_bag.apply delta before) after
        && Signed_bag.applies_exactly delta before);
    Helpers.qcheck ~count:100 "batch delta == sequential deltas"
      QCheck2.Gen.(
        Helpers.Delta_domain.db_gen >>= fun db ->
        Helpers.Delta_domain.changes_gen db >>= fun u1 ->
        Helpers.Delta_domain.expr_gen >>= fun expr ->
        return (db, u1, expr))
      (fun (pre, updates, expr) ->
        (* One transaction per update, batched vs step-by-step. *)
        let txns =
          List.mapi
            (fun i u -> Update.Transaction.single ~id:(i + 1) ~source:"s" u)
            updates
        in
        let batch_delta = Delta.eval ~pre (Delta.of_transactions txns) expr in
        let step_delta, _ =
          List.fold_left
            (fun (acc, db) txn ->
              let d = Delta.eval ~pre:db (Delta.of_transaction txn) expr in
              (Signed_bag.sum acc d, Database.apply_transaction db txn))
            (Signed_bag.zero, pre) txns
        in
        Bag.equal
          (Signed_bag.apply batch_delta (Eval.eval_bag pre expr))
          (Signed_bag.apply step_delta (Eval.eval_bag pre expr)));
    (* The columnar probe path (relation-cached indexes) against the
       interpreted delta rules directly — not just against the boxed
       compiled path. *)
    Helpers.qcheck ~count:300 "columnar delta == naive delta"
      QCheck2.Gen.(
        Helpers.Delta_domain.db_gen >>= fun db ->
        Helpers.Delta_domain.changes_gen db >>= fun updates ->
        Helpers.Delta_domain.expr_gen >>= fun expr ->
        return (db, updates, expr))
      (fun (pre, updates, expr) ->
        let txn = Update.Transaction.make ~id:1 ~source:"s" updates in
        let changes = Delta.of_transaction txn in
        Signed_bag.equal
          (Helpers.with_columnar true (fun () -> Delta.eval ~pre changes expr))
          (Delta.eval ~naive:true ~pre changes expr)) ]
