open Relational
open Query

let case = Helpers.case

let al ?(delta = Signed_bag.zero) view state = Action_list.delta ~view ~state delta

let plus view state tuple =
  Action_list.delta ~view ~state (Signed_bag.singleton tuple 1)

let wt_tests =
  [ case "views dedupe in order" (fun () ->
        let wt = Warehouse.Wt.make ~rows:[ 1 ] [ al "B" 1; al "A" 1; al "B" 1 ] in
        Alcotest.(check (list string)) "BA" [ "B"; "A" ] (Warehouse.Wt.views wt));
    case "rows are sorted and deduped" (fun () ->
        let wt = Warehouse.Wt.make ~rows:[ 3; 1; 3 ] [] in
        Alcotest.(check (list int)) "13" [ 1; 3 ] wt.Warehouse.Wt.rows;
        Alcotest.(check int) "last" 3 (Warehouse.Wt.last_row wt));
    case "depends_on iff view sets intersect" (fun () ->
        let w1 = Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1; al "B" 1 ] in
        let w2 = Warehouse.Wt.make ~rows:[ 2 ] [ al "B" 2 ] in
        let w3 = Warehouse.Wt.make ~rows:[ 3 ] [ al "C" 3 ] in
        Alcotest.(check bool) "w2 on w1" true (Warehouse.Wt.depends_on w2 w1);
        Alcotest.(check bool) "w3 not on w1" false (Warehouse.Wt.depends_on w3 w1));
    case "batch concatenates preserving order" (fun () ->
        let w1 = Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ] in
        let w2 = Warehouse.Wt.make ~rows:[ 2 ] [ al "A" 2 ] in
        let b = Warehouse.Wt.batch [ w1; w2 ] in
        Alcotest.(check (list int)) "rows" [ 1; 2 ] b.Warehouse.Wt.rows;
        Alcotest.(check int) "2 actions" 2 (List.length b.Warehouse.Wt.actions));
    case "action_count sums" (fun () ->
        let wt =
          Warehouse.Wt.make ~rows:[ 1 ]
            [ plus "A" 1 (Helpers.ints [ 1 ]); plus "B" 1 (Helpers.ints [ 2 ]) ]
        in
        Alcotest.(check int) "2" 2 (Warehouse.Wt.action_count wt)) ]

let store () =
  Warehouse.Store.create
    [ ("A", Helpers.rel (Helpers.int_schema [ "x" ]) [ [ 1 ] ]);
      ("B", Helpers.rel (Helpers.int_schema [ "y" ]) []) ]

let store_tests =
  [ case "initial snapshot is ws_0" (fun () ->
        let s = store () in
        Alcotest.(check int) "1 state" 1 (List.length (Warehouse.Store.states s));
        Alcotest.(check int) "A has 1" 1 (Relation.cardinal (Warehouse.Store.view s "A")));
    case "apply is atomic across action lists" (fun () ->
        let s = store () in
        Warehouse.Store.apply s
          (Warehouse.Wt.make ~rows:[ 1 ]
             [ plus "A" 1 (Helpers.ints [ 2 ]); plus "B" 1 (Helpers.ints [ 9 ]) ]);
        Alcotest.(check int) "one commit" 1 (Warehouse.Store.commit_count s);
        Alcotest.(check int) "2 states" 2 (List.length (Warehouse.Store.states s));
        Alcotest.(check int) "A grew" 2 (Relation.cardinal (Warehouse.Store.view s "A"));
        Alcotest.(check int) "B grew" 1 (Relation.cardinal (Warehouse.Store.view s "B")));
    case "apply to unknown view raises and nothing else is recorded" (fun () ->
        let s = store () in
        Alcotest.(check bool) "raises" true
          (match
             Warehouse.Store.apply s
               (Warehouse.Wt.make ~rows:[ 1 ] [ plus "Z" 1 (Helpers.ints [ 1 ]) ])
           with
          | exception Warehouse.Store.Unknown_view "Z" -> true
          | _ -> false);
        Alcotest.(check int) "no commit recorded" 0 (Warehouse.Store.commit_count s));
    case "commits carry time and state" (fun () ->
        let s = store () in
        Warehouse.Store.apply s ~time:4.2 (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        match Warehouse.Store.commits s with
        | [ c ] ->
          Alcotest.(check (float 1e-9)) "time" 4.2 c.Warehouse.Store.time;
          Alcotest.(check int) "state has A" 1
            (Relation.cardinal (Database.find c.Warehouse.Store.state "A"))
        | _ -> Alcotest.fail "expected one commit");
    case "refresh action replaces view contents" (fun () ->
        let s = store () in
        Warehouse.Store.apply s
          (Warehouse.Wt.make ~rows:[ 1 ]
             [ Action_list.refresh ~view:"A" ~state:1 (Helpers.bag_of [ [ 7 ]; [ 8 ] ]) ]);
        Alcotest.check Helpers.bag "replaced"
          (Helpers.bag_of [ [ 7 ]; [ 8 ] ])
          (Relation.contents (Warehouse.Store.view s "A")));
    case "as_of with tied commit times serves the latest of them" (fun () ->
        let s = store () in
        Warehouse.Store.apply s ~time:1.0
          (Warehouse.Wt.make ~rows:[ 1 ] [ plus "A" 1 (Helpers.ints [ 2 ]) ]);
        Warehouse.Store.apply s ~time:1.0
          (Warehouse.Wt.make ~rows:[ 2 ] [ plus "A" 2 (Helpers.ints [ 3 ]) ]);
        Alcotest.(check int) "second commit wins the tie" 3
          (Relation.cardinal
             (Database.find (Warehouse.Store.as_of s 1.0) "A")));
    case "Keep_last prunes history but keeps the current state" (fun () ->
        let s =
          Warehouse.Store.create
            ~retention:(Warehouse.Store.Keep_last 2)
            [ ("A", Helpers.rel (Helpers.int_schema [ "x" ]) []) ]
        in
        for i = 1 to 4 do
          Warehouse.Store.apply s ~time:(float_of_int i)
            (Warehouse.Wt.make ~rows:[ i ] [ plus "A" i (Helpers.ints [ i ]) ])
        done;
        Alcotest.(check int) "all commits counted" 4
          (Warehouse.Store.commit_count s);
        Alcotest.(check int) "two retained" 2 (Warehouse.Store.retained s);
        Alcotest.(check int) "watermark" 2 (Warehouse.Store.watermark s);
        Alcotest.(check int) "states = ws_0 + retained" 3
          (List.length (Warehouse.Store.states s));
        Alcotest.(check int) "current intact" 4
          (Relation.cardinal (Warehouse.Store.view s "A"));
        Alcotest.(check int) "as_of inside the window" 3
          (Relation.cardinal
             (Database.find (Warehouse.Store.as_of s 3.5) "A"));
        Alcotest.(check bool) "as_of below the watermark" true
          (match Warehouse.Store.as_of s 1.5 with
          | exception Warehouse.Store.Pruned 1.5 -> true
          | _ -> false));
    case "Keep_last n < 1 is rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match
             Warehouse.Store.create
               ~retention:(Warehouse.Store.Keep_last 0)
               [ ("A", Helpers.rel (Helpers.int_schema [ "x" ]) []) ]
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Helpers.qcheck ~count:200 "as_of binary search matches a linear oracle"
      QCheck2.Gen.(
        pair (list_size (int_range 0 15) (int_range 0 4)) (int_range (-2) 40))
      (fun (gaps, instant10) ->
        (* Random nondecreasing commit times (repeats exercise the tie
           rule), then a random instant checked against a scan. *)
        let s =
          Warehouse.Store.create
            [ ("A", Helpers.rel (Helpers.int_schema [ "x" ]) []) ]
        in
        let time = ref 0.0 in
        List.iteri
          (fun i gap ->
            time := !time +. (float_of_int gap /. 2.0);
            Warehouse.Store.apply s ~time:!time
              (Warehouse.Wt.make ~rows:[ i + 1 ]
                 [ plus "A" (i + 1) (Helpers.ints [ i ]) ]))
          gaps;
        let instant = float_of_int instant10 /. 10.0 in
        let expected =
          List.fold_left
            (fun acc c ->
              if c.Warehouse.Store.time <= instant then
                Some c.Warehouse.Store.state
              else acc)
            None (Warehouse.Store.commits s)
        in
        let expected =
          match expected with
          | Some state -> state
          | None -> Warehouse.Store.initial s
        in
        Database.equal expected (Warehouse.Store.as_of s instant)) ]

(* Submitter tests run on the simulation engine. *)
let submitter_setup policy =
  let engine = Sim.Engine.create () in
  let s = store () in
  let committed = ref [] in
  let sub =
    Warehouse.Submitter.create engine ~policy
      ~commit_latency:(fun () -> 1.0)
      ~store:s
      ~on_commit:(fun wt ->
        committed := (Sim.Engine.now engine, wt.Warehouse.Wt.rows) :: !committed)
      ()
  in
  (engine, s, sub, committed)

let submitter_tests =
  [ case "serial commits one at a time in order" (fun () ->
        let engine, _, sub, committed = submitter_setup Warehouse.Submitter.Serial in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 2 ] [ al "B" 2 ]);
        Sim.Engine.run engine;
        let log = List.rev !committed in
        Alcotest.(check int) "2 commits" 2 (List.length log);
        (match log with
        | [ (t1, [ 1 ]); (t2, [ 2 ]) ] ->
          Alcotest.(check (float 1e-9)) "first at 1" 1.0 t1;
          Alcotest.(check (float 1e-9)) "second serialized at 2" 2.0 t2
        | _ -> Alcotest.fail "unexpected commit log");
        Alcotest.(check int) "none outstanding" 0 (Warehouse.Submitter.outstanding sub));
    case "dependency policy parallelizes independent transactions" (fun () ->
        let engine, _, sub, committed =
          submitter_setup Warehouse.Submitter.Dependency
        in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 2 ] [ al "B" 2 ]);
        Sim.Engine.run engine;
        let times = List.rev_map fst !committed in
        Alcotest.(check (list (float 1e-9))) "both at t=1" [ 1.0; 1.0 ] times);
    case "dependency policy serializes dependent transactions" (fun () ->
        let engine, _, sub, committed =
          submitter_setup Warehouse.Submitter.Dependency
        in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 2 ] [ al "A" 2 ]);
        Sim.Engine.run engine;
        let log = List.rev !committed in
        (match log with
        | [ (t1, [ 1 ]); (t2, [ 2 ]) ] ->
          Alcotest.(check (float 1e-9)) "first" 1.0 t1;
          Alcotest.(check (float 1e-9)) "second waits" 2.0 t2
        | _ -> Alcotest.fail "unexpected commit log"));
    case "dependency: later independent overtakes blocked dependent" (fun () ->
        let engine, _, sub, committed =
          submitter_setup Warehouse.Submitter.Dependency
        in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 2 ] [ al "A" 2 ]);
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 3 ] [ al "B" 3 ]);
        Sim.Engine.run engine;
        let at_one =
          List.filter (fun (t, _) -> abs_float (t -. 1.0) < 1e-9) !committed
        in
        Alcotest.(check int) "rows 1 and 3 at t=1" 2 (List.length at_one));
    case "batched combines into one BWT" (fun () ->
        let engine, s, sub, committed =
          submitter_setup (Warehouse.Submitter.Batched 2)
        in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 2 ] [ al "A" 2 ]);
        Sim.Engine.run engine;
        (match List.rev !committed with
        | [ (_, rows) ] -> Alcotest.(check (list int)) "both rows" [ 1; 2 ] rows
        | _ -> Alcotest.fail "expected a single batched commit");
        Alcotest.(check int) "one warehouse commit" 1 (Warehouse.Store.commit_count s));
    case "batched flushes a partial batch after the timeout" (fun () ->
        let engine = Sim.Engine.create () in
        let s = store () in
        let committed = ref 0 in
        let sub =
          Warehouse.Submitter.create engine ~policy:(Warehouse.Submitter.Batched 10)
            ~commit_latency:(fun () -> 0.1)
            ~batch_timeout:0.5 ~store:s
            ~on_commit:(fun _ -> incr committed)
            ()
        in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Sim.Engine.run engine;
        Alcotest.(check int) "flushed" 1 !committed;
        Alcotest.(check bool) "after timeout" true (Sim.Engine.now engine >= 0.5));
    case "batch timer firing on an already-flushed batch is a no-op" (fun () ->
        (* A size-triggered flush does not cancel the pending timer; when
           it fires on the (now empty) batch nothing must be committed,
           and a later submission must get a fresh timer. *)
        let engine = Sim.Engine.create () in
        let s = store () in
        let committed = ref [] in
        let sub =
          Warehouse.Submitter.create engine
            ~policy:(Warehouse.Submitter.Batched 2)
            ~commit_latency:(fun () -> 0.01)
            ~batch_timeout:0.05 ~store:s
            ~on_commit:(fun wt ->
              committed := (Sim.Engine.now engine, wt.Warehouse.Wt.rows) :: !committed)
            ()
        in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 2 ] [ al "A" 2 ]);
        (* The size flush happened at t=0; the t=0.05 timer is still
           pending. A third wt submitted after it fires needs its own. *)
        Sim.Engine.schedule_at engine 0.1 (fun () ->
            Warehouse.Submitter.submit sub
              (Warehouse.Wt.make ~rows:[ 3 ] [ al "A" 3 ]));
        Sim.Engine.run engine;
        (match List.rev !committed with
        | [ (t1, [ 1; 2 ]); (t2, [ 3 ]) ] ->
          Alcotest.(check (float 1e-9)) "size flush commit" 0.01 t1;
          Alcotest.(check (float 1e-9)) "fresh timer flush commit" 0.16 t2
        | log ->
          Alcotest.failf "unexpected commit log (%d entries)" (List.length log));
        Alcotest.(check int) "two store commits" 2
          (Warehouse.Store.commit_count s));
    case "pending timer adopts wts submitted after a size flush" (fun () ->
        (* wt3 arrives while the timer armed by wt1 is still pending (the
           batch it was armed for has already size-flushed): wt3 must ride
           that original deadline, not a new one. *)
        let engine = Sim.Engine.create () in
        let s = store () in
        let committed = ref [] in
        let sub =
          Warehouse.Submitter.create engine
            ~policy:(Warehouse.Submitter.Batched 2)
            ~commit_latency:(fun () -> 0.01)
            ~batch_timeout:0.05 ~store:s
            ~on_commit:(fun wt ->
              committed := (Sim.Engine.now engine, wt.Warehouse.Wt.rows) :: !committed)
            ()
        in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Sim.Engine.schedule_at engine 0.01 (fun () ->
            Warehouse.Submitter.submit sub
              (Warehouse.Wt.make ~rows:[ 2 ] [ al "A" 2 ]));
        Sim.Engine.schedule_at engine 0.02 (fun () ->
            Warehouse.Submitter.submit sub
              (Warehouse.Wt.make ~rows:[ 3 ] [ al "A" 3 ]));
        Sim.Engine.run engine;
        (match List.rev !committed with
        | [ (t1, [ 1; 2 ]); (t2, [ 3 ]) ] ->
          Alcotest.(check (float 1e-9)) "size flush commit" 0.02 t1;
          (* original deadline 0.05, not 0.02 + 0.05 *)
          Alcotest.(check (float 1e-9)) "original deadline" 0.06 t2
        | log ->
          Alcotest.failf "unexpected commit log (%d entries)" (List.length log)));
    case "batch formed exactly at the timeout boundary" (fun () ->
        (* The timer (scheduled at t=0) and a submission at exactly
           t=timeout tie; engine insertion order runs the timer first, so
           the second wt starts a new batch of its own. *)
        let engine = Sim.Engine.create () in
        let s = store () in
        let committed = ref [] in
        let sub =
          Warehouse.Submitter.create engine
            ~policy:(Warehouse.Submitter.Batched 10)
            ~commit_latency:(fun () -> 0.01)
            ~batch_timeout:0.05 ~store:s
            ~on_commit:(fun wt ->
              committed := (Sim.Engine.now engine, wt.Warehouse.Wt.rows) :: !committed)
            ()
        in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Sim.Engine.schedule_at engine 0.05 (fun () ->
            Warehouse.Submitter.submit sub
              (Warehouse.Wt.make ~rows:[ 2 ] [ al "A" 2 ]));
        Sim.Engine.run engine;
        (match List.rev !committed with
        | [ (t1, [ 1 ]); (t2, [ 2 ]) ] ->
          Alcotest.(check (float 1e-9)) "first batch at its deadline" 0.06 t1;
          Alcotest.(check (float 1e-9)) "second batch a full timeout later"
            0.11 t2
        | log ->
          Alcotest.failf "unexpected commit log (%d entries)" (List.length log));
        Alcotest.(check int) "nothing outstanding" 0
          (Warehouse.Submitter.outstanding sub));
    case "committed counter" (fun () ->
        let engine, _, sub, _ = submitter_setup Warehouse.Submitter.Serial in
        Warehouse.Submitter.submit sub (Warehouse.Wt.make ~rows:[ 1 ] [ al "A" 1 ]);
        Sim.Engine.run engine;
        Alcotest.(check int) "1" 1 (Warehouse.Submitter.committed sub));
    case "policy names" (fun () ->
        Alcotest.(check string) "serial" "serial"
          (Warehouse.Submitter.policy_name Warehouse.Submitter.Serial);
        Alcotest.(check string) "batched" "batched-4"
          (Warehouse.Submitter.policy_name (Warehouse.Submitter.Batched 4))) ]

let submitter_property_tests =
  [ Helpers.qcheck ~count:100 "dependency policy: dependent commits in order"
      QCheck2.Gen.(int_range 0 1_000_000)
      (fun seed ->
        let rng = Sim.Rng.create seed in
        let engine = Sim.Engine.create () in
        let store =
          Warehouse.Store.create
            (List.init 4 (fun i ->
                 ( Printf.sprintf "V%d" i,
                   Relational.Relation.create (Helpers.int_schema [ "x" ]) )))
        in
        let committed = ref [] in
        let sub =
          Warehouse.Submitter.create engine
            ~policy:Warehouse.Submitter.Dependency
            ~commit_latency:(fun () -> Sim.Rng.float rng 0.1)
            ~store
            ~on_commit:(fun wt -> committed := wt :: !committed)
            ()
        in
        (* Random submissions at random times with random view sets. *)
        let n = Sim.Rng.int_range rng 1 12 in
        let wts =
          List.init n (fun i ->
              let views =
                List.filter (fun _ -> Sim.Rng.bool rng) [ 0; 1; 2; 3 ]
              in
              let views = if views = [] then [ Sim.Rng.int rng 4 ] else views in
              Warehouse.Wt.make ~rows:[ i + 1 ]
                (List.map
                   (fun v ->
                     al (Printf.sprintf "V%d" v) (i + 1))
                   views))
        in
        let clock = ref 0.0 in
        List.iter
          (fun wt ->
            clock := !clock +. Sim.Rng.float rng 0.05;
            let at = !clock in
            Sim.Engine.schedule_at engine at (fun () ->
                Warehouse.Submitter.submit sub wt))
          wts;
        Sim.Engine.run engine;
        let order = List.rev_map (fun wt -> Warehouse.Wt.last_row wt) !committed in
        (* Everything committed... *)
        List.length order = n
        (* ...and for any dependent pair, submission order = commit order. *)
        && List.for_all
             (fun (i, wi) ->
               List.for_all
                 (fun (j, wj) ->
                   i >= j
                   || (not (Warehouse.Wt.depends_on wj wi))
                   ||
                   let pos r =
                     let rec find k = function
                       | [] -> -1
                       | x :: rest -> if x = r then k else find (k + 1) rest
                     in
                     find 0 order
                   in
                   pos (i + 1) < pos (j + 1))
                 (List.mapi (fun j w -> (j, w)) wts))
             (List.mapi (fun i w -> (i, w)) wts)) ]

let tests = wt_tests @ store_tests @ submitter_tests @ submitter_property_tests
