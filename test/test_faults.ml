(* Resilience under message loss, duplication, and crashes.

   With reliability OFF these tests pin down exactly what breaks when the
   painting algorithms' reliable-FIFO assumption is violated:

   - losing a view's *last* pending list stops progress (the merge holds
     dependent rows forever) but never exposes an inconsistent state;
   - losing a list *followed by another from the same manager* is a FIFO
     gap. SPA detects it (an earlier white entry in the same column cannot
     happen under complete managers + FIFO) and refuses to proceed; PA
     cannot distinguish a gap from legitimate batching, silently converges
     to wrong contents — and the consistency oracle catches it.

   With reliability ON (the ARQ layer of Sim.Reliable), the same faults
   are detected and repaired — the gap triggers a NACK and a selective
   retransmit, a lost final message is retransmitted on timeout, and a
   crashed view manager resyncs against the merge's watermark and replays
   the integrator's log — and the oracle confirms the MVC guarantees
   survive. The qcheck soak sweeps random fault plans across vm kinds and
   merge algorithms. *)

open Whips

let case = Helpers.case

let lossy ?(vm_kind = System.Complete_vm) ?merge_kind
    ?(reliability = System.Off) ?(scen = Workload.Scenarios.paper_views)
    ~view ~nth seed =
  let cfg =
    { (System.default scen) with
      vm_kind;
      faults = [ System.Drop_action_list { view; nth } ];
      reliability;
      arrival = System.Poisson 60.0;
      seed }
  in
  let cfg =
    match merge_kind with None -> cfg | Some mk -> { cfg with merge_kind = mk }
  in
  cfg

let acked = System.Acked Sim.Reliable.default_params

let strong_or_better v = Consistency.Checker.(at_least Strong) v

let unreliable_tests =
  [ case "dropping a view's final list leaves the run stuck but safe"
      (fun () ->
        (* V2 is relevant to all three updates; dropping its third list
           blocks row 3 forever with no subsequent list to expose a gap. *)
        let result = System.run (lossy ~view:"V2" ~nth:3 1) in
        Alcotest.(check bool) "stuck" true result.stuck;
        Alcotest.(check bool) "rows 1,2 committed" true
          (Warehouse.Store.commit_count result.store >= 2);
        Alcotest.(check bool) "channel counted the drop" true
          ((Atomic.get result.metrics.Metrics.msgs_dropped) = 1);
        let v = System.verdict result in
        Alcotest.(check bool) "prefix consistent" true
          (String.equal v.detail "final warehouse state differs from V(ss_f)"));
    case "SPA detects a FIFO gap instead of corrupting the warehouse"
      (fun () ->
        (* Dropping V2's FIRST list while later V2 lists arrive is a gap:
           the hardened SPA raises a protocol error. *)
        Alcotest.(check bool) "protocol error" true
          (match System.run (lossy ~view:"V2" ~nth:1 1) with
          | _ -> false
          | exception Mvc.Vut.Protocol_error msg ->
            (* The message names the gap. *)
            String.length msg > 0));
    case "PA cannot detect the gap; the oracle catches the corruption"
      (fun () ->
        (* Same loss under PA: the later list covers the white entry as if
           it were a legitimate batch, and the run completes with wrong
           contents. *)
        (* In paper-views-q, V2's second list carries the +[2;3;4;6]
           insertion; losing it while the third list still arrives makes
           PA treat the white entry as covered by a batch. *)
        let result =
          System.run
            (lossy ~merge_kind:System.Force_pa
               ~scen:Workload.Scenarios.paper_views_q ~view:"V2" ~nth:2 1)
        in
        Alcotest.(check bool) "not stuck" false result.stuck;
        let v = System.verdict result in
        Alcotest.(check bool) "corruption detected" false v.convergent);
    case "updates on unaffected views still flow before the loss blocks"
      (fun () ->
        let result = System.run (lossy ~view:"V2" ~nth:3 3) in
        Alcotest.(check bool) "some commits happened" true
          (Warehouse.Store.commit_count result.store > 0));
    case "crashed manager without the reliability layer stays dead but safe"
      (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.paper_views) with
            faults =
              [ System.Crash_vm
                  { view = "V2"; at_event = 2; restart_after = 0.1 } ];
            arrival = System.Poisson 60.0;
            seed = 1 }
        in
        let result = System.run cfg in
        Alcotest.(check int) "crashed" 1 (Atomic.get result.metrics.Metrics.crashes);
        Alcotest.(check int) "no recovery" 0 (Atomic.get result.metrics.Metrics.recoveries);
        Alcotest.(check bool) "stuck" true result.stuck;
        let v = System.verdict result in
        Alcotest.(check bool) "nothing wrong was merged" true
          (String.equal v.detail "final warehouse state differs from V(ss_f)"));
    case "no fault, no stuck flag" (fun () ->
        let result =
          System.run (System.default Workload.Scenarios.paper_views)
        in
        Alcotest.(check bool) "clean" false result.stuck) ]

let reliable_tests =
  [ case "the PA-corrupting gap is detected, NACKed, and repaired" (fun () ->
        (* The exact scenario that silently corrupts above, now with the
           ARQ layer: the merge-side receiver sees the sequence gap, nacks
           the missing frame back to V2's manager, the list is resent, and
           the run converges to the correct warehouse. *)
        let result =
          System.run
            { (lossy ~merge_kind:System.Force_pa ~reliability:acked
                 ~scen:Workload.Scenarios.paper_views_q ~view:"V2" ~nth:2 1)
              with
              (* Back-to-back arrivals: the successor frame reaches the
                 merge inside the retransmit timeout, so repair comes from
                 the gap nack, not the timer. *)
              arrival = System.All_at_once }
        in
        Alcotest.(check bool) "not stuck" false result.stuck;
        Alcotest.(check bool) "the drop happened" true
          ((Atomic.get result.metrics.Metrics.msgs_dropped) >= 1);
        Alcotest.(check bool) "gap nacked" true
          ((Atomic.get result.metrics.Metrics.nacks) >= 1);
        Alcotest.(check bool) "list retransmitted" true
          ((Atomic.get result.metrics.Metrics.retransmits) >= 1);
        let v = System.verdict result in
        Alcotest.(check bool) "consistent again" true (strong_or_better v));
    case "a lost final list is repaired by timeout retransmission" (fun () ->
        (* No later frame exposes the gap, so recovery must come from the
           sender's retransmit timer, not a nack. *)
        let result = System.run (lossy ~reliability:acked ~view:"V2" ~nth:3 1) in
        Alcotest.(check bool) "not stuck" false result.stuck;
        Alcotest.(check bool) "retransmitted" true
          ((Atomic.get result.metrics.Metrics.retransmits) >= 1);
        let v = System.verdict result in
        Alcotest.(check bool) "complete" true v.complete);
    case "crashed complete manager resyncs, replays the log, and catches up"
      (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.paper_views) with
            faults =
              [ System.Crash_vm
                  { view = "V2"; at_event = 2; restart_after = 0.1 } ];
            reliability = acked;
            arrival = System.Poisson 60.0;
            seed = 1 }
        in
        let result = System.run cfg in
        Alcotest.(check bool) "not stuck" false result.stuck;
        Alcotest.(check int) "crashed" 1 (Atomic.get result.metrics.Metrics.crashes);
        Alcotest.(check int) "recovered" 1 (Atomic.get result.metrics.Metrics.recoveries);
        let v = System.verdict result in
        Alcotest.(check bool) "complete after recovery" true v.complete);
    case "crashed batching manager recovers under PA" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.paper_views) with
            vm_kind = System.Batching_vm;
            faults =
              [ System.Crash_vm
                  { view = "V2"; at_event = 1; restart_after = 0.1 } ];
            reliability = acked;
            arrival = System.Poisson 60.0;
            seed = 2 }
        in
        let result = System.run cfg in
        Alcotest.(check bool) "not stuck" false result.stuck;
        Alcotest.(check int) "recovered" 1 (Atomic.get result.metrics.Metrics.recoveries);
        let v = System.verdict result in
        Alcotest.(check bool) "strongly consistent" true (strong_or_better v));
    case "crash faults on source-querying managers are rejected" (fun () ->
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument
             "System: Crash_vm faults support Complete_vm, Selfmaint_vm and \
              Batching_vm managers (log-replay recovery)")
          (fun () ->
            ignore
              (System.run
                 { (System.default Workload.Scenarios.paper_views) with
                   vm_kind = System.Strobe_vm;
                   reliability = acked;
                   faults =
                     [ System.Crash_vm
                         { view = "V2"; at_event = 1; restart_after = 0.1 } ]
                 })));
    case "a faultless acked run stays complete and quiet" (fun () ->
        let result =
          System.run
            { (System.default Workload.Scenarios.paper_views) with
              reliability = acked }
        in
        Alcotest.(check bool) "not stuck" false result.stuck;
        Alcotest.(check int) "no retransmits" 0
          (Atomic.get result.metrics.Metrics.retransmits);
        Alcotest.(check bool) "acks flowed" true
          ((Atomic.get result.metrics.Metrics.acks) > 0);
        let v = System.verdict result in
        Alcotest.(check bool) "complete" true v.complete) ]

(* ---- the soak: random fault plans x vm kinds x merge kinds ---- *)

(* One soak run, fully determined by [seed]: a small generated workload, a
   seeded random channel-fault plan (drops, duplicates, delay spikes on
   every channel), sometimes a deterministic nth-drop, sometimes a view
   manager crash. The checker must report (at least) the level the
   configuration guarantees in the fault-free case. *)
let soak_run seed =
  let rng = Sim.Rng.create (0x50AC + seed) in
  let scen =
    Workload.Generator.generate
      { Workload.Generator.default with
        seed = 1 + Sim.Rng.int rng 1000;
        n_views = 3;
        n_transactions = 8;
        initial_tuples = 4 }
  in
  let vm_kind, merge_kind, want =
    match Sim.Rng.int rng 3 with
    | 0 -> (System.Complete_vm, System.Auto, Consistency.Checker.Complete)
    | 1 -> (System.Complete_vm, System.Force_pa, Consistency.Checker.Strong)
    | _ -> (System.Batching_vm, System.Auto, Consistency.Checker.Strong)
  in
  let plan =
    Workload.Fault_plan.union
      [ Workload.Fault_plan.random ~drop:0.15 ~duplicate:0.1 ~delay:0.1
          ~delay_by:0.05 "*";
        (if Sim.Rng.bool rng then
           Workload.Fault_plan.nth
             ~channel:(Query.View.name (List.hd scen.Workload.Scenarios.views)
                      ^ "->merge")
             ~nth:(1 + Sim.Rng.int rng 3)
             Workload.Fault_plan.Drop
         else Workload.Fault_plan.empty) ]
  in
  let faults =
    if Sim.Rng.int rng 3 = 0 then
      [ System.Crash_vm
          { view = Query.View.name (List.hd scen.Workload.Scenarios.views);
            at_event = 1 + Sim.Rng.int rng 3;
            restart_after = 0.05 +. Sim.Rng.float rng 0.1 } ]
    else []
  in
  let cfg =
    { (System.default scen) with
      vm_kind;
      merge_kind;
      fault_plan = plan;
      faults;
      reliability = acked;
      arrival = System.Poisson 80.0;
      seed = Sim.Rng.int rng 10_000 }
  in
  (* Every seed runs twice — columnar kernels forced off and forced
     on — and the two runs must be trace-identical: same stuck flag,
     same drain time, and a byte-equal warehouse state sequence. The
     columnar switch is a representation choice; faults, crashes and
     repairs must not be able to observe it. *)
  let result = Helpers.with_columnar false (fun () -> System.run cfg) in
  let result_col = Helpers.with_columnar true (fun () -> System.run cfg) in
  let v = System.verdict result in
  if result.stuck then
    QCheck2.Test.fail_reportf "soak %d: stuck (%s)" seed result.merge_algorithm;
  if not (Consistency.Checker.at_least want v) then
    QCheck2.Test.fail_reportf "soak %d: wanted %s, got %s (%s, %d dropped)"
      seed
      (Consistency.Checker.level_name want)
      Consistency.Checker.(level_name (level v))
      result.merge_algorithm (Atomic.get result.metrics.Metrics.msgs_dropped);
  if result_col.stuck <> result.stuck then
    QCheck2.Test.fail_reportf "soak %d: columnar changed the stuck flag" seed;
  if result_col.metrics.Metrics.completed_at <> result.metrics.Metrics.completed_at
  then
    QCheck2.Test.fail_reportf "soak %d: columnar changed the drain time" seed;
  let states r = Warehouse.Store.states r.System.store in
  if
    List.length (states result) <> List.length (states result_col)
    || not
         (List.for_all2 Relational.Database.equal (states result)
            (states result_col))
  then
    QCheck2.Test.fail_reportf
      "soak %d: columnar changed the warehouse state sequence" seed;
  true

let soak_tests =
  [ Helpers.qcheck ~count:220
      "soak: random fault plans keep acked runs consistent"
      QCheck2.Gen.(int_range 0 1_000_000)
      soak_run ]

let tests = unreliable_tests @ reliable_tests @ soak_tests
