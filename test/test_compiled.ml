(* Property tests for the performance kernel: the hash-partitioned join
   against the nested-loop reference, the compiled positional evaluator
   against the interpreted one, the hash delta rules against the naive
   delta rules, and the VUT color indexes against a linear scan. Each
   suite runs >= 500 random cases; the naive paths are the oracles. *)

open Relational
open Query

let qcheck name gen prop = Helpers.qcheck ~count:500 name gen prop

(* Random join inputs: schemas sharing 0..2 attributes (zero shared
   attributes exercises the cross-product path), counted tuple lists with
   duplicate tuples and negative multiplicities (signed deltas join
   pre-state bags through the same kernel). *)
module Join_gen = struct
  open QCheck2.Gen

  let schemas =
    int_range 0 2 >>= fun n_shared ->
    int_range 1 2 >>= fun n_left ->
    int_range 1 2 >>= fun n_right ->
    let names prefix n = List.init n (fun i -> Printf.sprintf "%s%d" prefix i) in
    return
      ( Helpers.int_schema (names "s" n_shared @ names "l" n_left),
        Helpers.int_schema (names "s" n_shared @ names "r" n_right) )

  let counted ~arity =
    list_size (int_range 0 10)
      (pair (Helpers.Gen.int_tuple ~arity ~range:3) (int_range (-3) 3))

  let t =
    schemas >>= fun (ls, rs) ->
    counted ~arity:(Schema.arity ls) >>= fun l ->
    counted ~arity:(Schema.arity rs) >>= fun r ->
    return (ls, rs, l, r)
end

(* The Delta_domain expression pool plus shapes it lacks: an
   empty-shared-attribute join (cross product), grouped aggregation and
   renaming, so the compiled paths for every node kind get exercised. *)
let expr_gen =
  let open Algebra in
  let extras =
    [ join (project [ "a0" ] (base "R0")) (project [ "a2" ] (base "R1"));
      group_by ~keys:[ "a1" ]
        ~aggregates:[ ("n", Count); ("s", Sum "a0"); ("m", Max "a2") ]
        (join (base "R0") (base "R1"));
      group_by ~keys:[]
        ~aggregates:[ ("n", Count); ("avg", Avg "a1") ]
        (base "R1");
      rename [ ("a0", "b0") ] (base "R0") ]
  in
  QCheck2.Gen.oneof
    [ Helpers.Delta_domain.expr_gen; QCheck2.Gen.oneofl extras ]

let eval_case_gen =
  QCheck2.Gen.(
    Helpers.Delta_domain.db_gen >>= fun db ->
    expr_gen >>= fun expr -> return (db, expr))

let delta_case_gen =
  QCheck2.Gen.(
    Helpers.Delta_domain.db_gen >>= fun db ->
    Helpers.Delta_domain.changes_gen db >>= fun updates ->
    expr_gen >>= fun expr -> return (db, updates, expr))

(* Random VUT event sequences. Events reference live rows by index so any
   generated sequence is valid; queries are then compared against the
   linear-scan reference ([earlier_with] / [rows]) for every view and a
   set of probe rows straddling the live rows. *)
module Vut_gen = struct
  open QCheck2.Gen

  let views = [ "V1"; "V2"; "V3" ]

  type event =
    | Add of bool * bool * bool  (* which views are in REL_i *)
    | Set of int * int * Mvc.Vut.color  (* live-row index, view index *)
    | Purge of int  (* live-row index *)

  let color = oneofl [ Mvc.Vut.White; Mvc.Vut.Red; Mvc.Vut.Gray; Mvc.Vut.Black ]

  let event =
    oneof
      [ map3 (fun a b c -> Add (a, b, c)) bool bool bool;
        map3 (fun i v c -> Set (i, v, c)) (int_range 0 50) (int_range 0 2) color;
        map (fun i -> Purge i) (int_range 0 50) ]

  let events = list_size (int_range 0 40) event

  let replay evs =
    let vut = Mvc.Vut.create ~views in
    let next = ref 1 in
    let live_row i =
      match Mvc.Vut.rows vut with
      | [] -> None
      | rows -> Some (List.nth rows (i mod List.length rows))
    in
    List.iter
      (function
        | Add (a, b, c) ->
          let rel =
            List.concat
              [ (if a then [ "V1" ] else []);
                (if b then [ "V2" ] else []);
                (if c then [ "V3" ] else []) ]
          in
          Mvc.Vut.add_row vut ~row:!next ~rel;
          incr next
        | Set (i, v, color) -> (
          match live_row i with
          | Some row -> Mvc.Vut.set_color vut ~row ~view:(List.nth views v) color
          | None -> ())
        | Purge i -> (
          match live_row i with
          | Some row -> Mvc.Vut.purge_row vut row
          | None -> ()))
      evs;
    vut
end

let vut_indexes_agree vut =
  let open Mvc.Vut in
  let rows = rows vut in
  let probes = 0 :: 1000 :: List.concat_map (fun r -> [ r; r + 1 ]) rows in
  let colored c r view = (entry vut ~row:r ~view).color = c in
  List.for_all
    (fun view ->
      List.for_all
        (fun row ->
          let reds_ref = earlier_with vut ~row ~view (fun e -> e.color = Red) in
          let whites_ref =
            earlier_with vut ~row ~view (fun e -> e.color = White)
          in
          earlier_reds vut ~row ~view = reds_ref
          && has_earlier_red vut ~row ~view = (reds_ref <> [])
          && first_earlier_white vut ~row ~view
             = (match whites_ref with [] -> None | w :: _ -> Some w)
          && next_red vut ~row ~view
             = (match List.filter (fun r -> r > row && colored Red r view) rows with
               | [] -> 0
               | r :: _ -> r)
          && white_rows_up_to vut ~view row
             = List.filter (fun r -> r <= row && colored White r view) rows)
        probes)
    Vut_gen.views

let tests =
  [ qcheck "hash join == nested-loop join" Join_gen.t
      (fun (ls, rs, l, r) ->
        Signed_bag.equal
          (Signed_bag.of_list (Eval.join_counted ls rs l r))
          (Signed_bag.of_list (Eval.join_counted_naive ls rs l r)));
    qcheck "compiled eval == interpreted eval" eval_case_gen
      (fun (db, expr) ->
        Bag.equal (Eval.eval_bag db expr) (Eval.eval_bag ~naive:true db expr));
    qcheck "hash delta == naive delta" delta_case_gen
      (fun (pre, updates, expr) ->
        let txn = Update.Transaction.make ~id:1 ~source:"s" updates in
        let changes = Delta.of_transaction txn in
        Signed_bag.equal
          (Delta.eval ~pre changes expr)
          (Delta.eval ~naive:true ~pre changes expr));
    qcheck "vut indexes == linear scan" Vut_gen.events
      (fun evs -> vut_indexes_agree (Vut_gen.replay evs));
    (* Columnar-vs-boxed oracles: the same plan evaluated with the
       columnar kernels forced on and forced off must be bag-identical
       (the boxed path is itself oracle-tested against the interpreted
       evaluator above). *)
    qcheck "columnar eval == boxed eval" eval_case_gen
      (fun (db, expr) ->
        Bag.equal
          (Helpers.with_columnar true (fun () -> Eval.eval_bag db expr))
          (Helpers.with_columnar false (fun () -> Eval.eval_bag db expr)));
    qcheck "columnar delta == boxed delta" delta_case_gen
      (fun (pre, updates, expr) ->
        let txn = Update.Transaction.make ~id:1 ~source:"s" updates in
        let changes = Delta.of_transaction txn in
        Signed_bag.equal
          (Helpers.with_columnar true (fun () -> Delta.eval ~pre changes expr))
          (Helpers.with_columnar false (fun () ->
               Delta.eval ~pre changes expr)));
    qcheck "columnar join kernel == boxed join kernel" Join_gen.t
      (fun (ls, rs, l, r) ->
        let shared = Schema.common ls rs in
        let key_left = Schema.positions ls shared
        and key_right = Schema.positions rs shared in
        let right_extra =
          Schema.positions rs
            (List.filter (fun n -> not (List.mem n shared)) (Schema.names rs))
        in
        Signed_bag.equal
          (Columnar.to_signed
             (Columnar.join ~key_left ~key_right ~right_extra
                (Columnar.of_counted_list ~arity:(Schema.arity ls) l)
                (Columnar.of_counted_list ~arity:(Schema.arity rs) r)))
          (Signed_bag.of_list
             (Compiled.join_counted_pos ~key_left ~key_right ~right_extra l r))) ]
