open Whips

let case = Helpers.case

let check_verdict name ~complete ~strong result =
  let v = System.verdict result in
  Alcotest.(check bool) (name ^ " conclusive") true v.conclusive;
  Alcotest.(check bool) (name ^ " convergent") true v.convergent;
  Alcotest.(check bool)
    (name ^ " strongly consistent")
    strong v.strongly_consistent;
  if complete then Alcotest.(check bool) (name ^ " complete") true v.complete

let scenario_tests =
  List.concat_map
    (fun scen ->
      let name = scen.Workload.Scenarios.name in
      [ case (name ^ ": SPA over complete managers is complete") (fun () ->
            let result = System.run (System.default scen) in
            Alcotest.(check string) "algorithm" "SPA" result.merge_algorithm;
            check_verdict name ~complete:true ~strong:true result);
        case (name ^ ": PA over batching managers is strongly consistent")
          (fun () ->
            let cfg =
              { (System.default scen) with
                vm_kind = System.Batching_vm;
                arrival = System.Poisson 60.0;
                seed = 17 }
            in
            let result = System.run cfg in
            Alcotest.(check string) "algorithm" "PA" result.merge_algorithm;
            check_verdict name ~complete:false ~strong:true result);
        case (name ^ ": strobe managers are strongly consistent") (fun () ->
            let cfg =
              { (System.default scen) with
                vm_kind = System.Strobe_vm;
                arrival = System.Poisson 50.0;
                seed = 23 }
            in
            check_verdict name ~complete:false ~strong:true (System.run cfg));
        case (name ^ ": sequential baseline is complete") (fun () ->
            let cfg = { (System.default scen) with merge_kind = System.Sequential } in
            check_verdict name ~complete:true ~strong:true (System.run cfg)) ])
    Workload.Scenarios.all

let violation_tests =
  [ case "passthrough merge violates MVC but converges" (fun () ->
        (* Failure injection: the oracle must catch the broken merge. *)
        let failures = ref 0 in
        List.iter
          (fun seed ->
            let cfg =
              { (System.default Workload.Scenarios.paper_views) with
                merge_kind = System.Force_passthrough;
                arrival = System.Poisson 200.0;
                seed }
            in
            let v = System.verdict (System.run cfg) in
            Alcotest.(check bool) "convergent" true v.convergent;
            if not v.strongly_consistent then incr failures)
          [ 1; 2; 3; 4; 5; 6 ];
        Alcotest.(check bool) "oracle caught at least one violation" true
          (!failures > 0));
    case "convergent managers downgrade the system to convergence" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.paper_views) with
            vm_kind = System.Convergent_vm;
            arrival = System.Poisson 100.0;
            seed = 5 }
        in
        let result = System.run cfg in
        Alcotest.(check string) "passthrough chosen" "passthrough"
          result.merge_algorithm;
        let v = System.verdict result in
        Alcotest.(check bool) "convergent" true v.convergent) ]

let policy_tests =
  [ case "dependency submitter preserves MVC" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.retail_star) with
            submit = Warehouse.Submitter.Dependency;
            arrival = System.Poisson 80.0;
            seed = 31 }
        in
        check_verdict "dependency" ~complete:true ~strong:true (System.run cfg));
    case "batched submitter keeps strong consistency, loses completeness"
      (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.retail_star) with
            submit = Warehouse.Submitter.Batched 2;
            seed = 37 }
        in
        let result = System.run cfg in
        let v = System.verdict result in
        Alcotest.(check bool) "strong" true v.strongly_consistent;
        Alcotest.(check bool) "fewer commits than transactions" true
          (Warehouse.Store.commit_count result.store
          < List.length result.transactions + 1));
    case "complete-N managers run under PA" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.retail_star) with
            vm_kind = System.Complete_n_vm 2;
            seed = 41 }
        in
        let result = System.run cfg in
        Alcotest.(check string) "PA" "PA" result.merge_algorithm;
        check_verdict "complete-n" ~complete:false ~strong:true result);
    case "periodic managers refresh consistently" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.bank) with
            vm_kind = System.Periodic_vm 0.2;
            arrival = System.Uniform 0.05;
            seed = 43 }
        in
        check_verdict "periodic" ~complete:false ~strong:true (System.run cfg));
    case "mixed manager kinds follow the weakest level" (fun () ->
        let scen = Workload.Scenarios.paper_views in
        let cfg =
          { (System.default scen) with
            vm_kind = System.Complete_vm;
            vm_overrides = [ ("V2", System.Batching_vm) ];
            arrival = System.Poisson 60.0;
            seed = 47 }
        in
        let result = System.run cfg in
        Alcotest.(check string) "PA for the mix" "PA" result.merge_algorithm;
        check_verdict "mixed" ~complete:false ~strong:true result) ]

let partition_tests =
  [ case "distributed merge preserves completeness" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.paper_views) with
            merge_groups = Some 2;
            seed = 53 }
        in
        check_verdict "partitioned" ~complete:true ~strong:true (System.run cfg));
    case "distributed merge with batching managers" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.paper_views) with
            merge_groups = Some 2;
            vm_kind = System.Batching_vm;
            arrival = System.Poisson 80.0;
            seed = 59 }
        in
        check_verdict "partitioned-pa" ~complete:false ~strong:true
          (System.run cfg)) ]

let spanning_partition_tests =
  (* Section 6.1's partitioning assumes updates never span groups. A
     multi-relation transaction crossing two merge processes is torn into
     two warehouse commits; the oracle must flag it, and the single-merge
     configuration must keep it atomic. *)
  let scen =
    let int_schema names =
      Relational.Schema.make
        (List.map (fun n -> (n, Relational.Value.Int_ty)) names)
    in
    { Workload.Scenarios.name = "spanning";
      specs =
        [ { Source.Sources.source = "a"; relation = "Rx";
            init =
              Relational.Relation.of_tuples (int_schema [ "x" ])
                [ Relational.Tuple.ints [ 1 ] ] };
          { source = "b"; relation = "Qx";
            init =
              Relational.Relation.of_tuples (int_schema [ "y" ])
                [ Relational.Tuple.ints [ 2 ] ] } ];
      views =
        [ Query.View.make "VR" (Query.Algebra.base "Rx");
          Query.View.make "VQ" (Query.Algebra.base "Qx") ];
      script =
        [ [ Relational.Update.insert "Rx" (Relational.Tuple.ints [ 10 ]);
            Relational.Update.insert "Qx" (Relational.Tuple.ints [ 20 ]) ];
          [ Relational.Update.insert "Rx" (Relational.Tuple.ints [ 11 ]) ] ] }
  in
  [ case "single merge keeps a group-spanning transaction atomic" (fun () ->
        let r = System.run { (System.default scen) with seed = 3 } in
        check_verdict "atomic" ~complete:true ~strong:true r);
    case "partitioned merges tear a group-spanning transaction" (fun () ->
        let r =
          System.run
            { (System.default scen) with merge_groups = Some 2; seed = 3 }
        in
        let v = System.verdict r in
        Alcotest.(check bool) "violation flagged" false v.strongly_consistent;
        Alcotest.(check bool) "still convergent" true v.convergent) ]

let misc_tests =
  [ case "semantic filtering drops irrelevant work" (fun () ->
        let scen = Workload.Scenarios.retail_star in
        let base = { (System.default scen) with seed = 61 } in
        let plain = System.run base in
        let filtered = System.run { base with semantic_filter = true } in
        check_verdict "filtered" ~complete:true ~strong:true filtered;
        Alcotest.(check bool) "no more commits than unfiltered" true
          (Warehouse.Store.commit_count filtered.store
          <= Warehouse.Store.commit_count plain.store));
    case "same seed gives identical histories (determinism)" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.bank) with
            arrival = System.Poisson 50.0;
            seed = 67 }
        in
        let a = System.run cfg and b = System.run cfg in
        Alcotest.(check int) "commit counts equal"
          (Warehouse.Store.commit_count a.store)
          (Warehouse.Store.commit_count b.store);
        Alcotest.(check (float 1e-12)) "completion times equal"
          a.metrics.Metrics.completed_at b.metrics.Metrics.completed_at);
    case "final view contents match direct evaluation" (fun () ->
        let scen = Workload.Scenarios.retail_star in
        let result = System.run { (System.default scen) with seed = 71 } in
        List.iter
          (fun v ->
            let expected =
              Relational.Relation.contents
                (Query.View.materialize
                   (Source.Sources.current result.sources)
                   v)
            in
            Alcotest.check Helpers.bag
              (Query.View.name v ^ " final contents")
              expected
              (System.view_contents result (Query.View.name v)))
          scen.views);
    case "metrics populated" (fun () ->
        let result =
          System.run { (System.default Workload.Scenarios.bank) with seed = 73 }
        in
        let m = result.metrics in
        Alcotest.(check int) "transactions" 4 (Atomic.get m.Metrics.transactions);
        Alcotest.(check bool) "staleness sampled" true
          (Sim.Stats.Summary.count m.Metrics.staleness > 0);
        Alcotest.(check bool) "completed" true (m.Metrics.completed_at > 0.0));
    case "All_at_once arrival drains" (fun () ->
        let cfg =
          { (System.default Workload.Scenarios.paper_views) with
            arrival = System.All_at_once;
            vm_kind = System.Batching_vm;
            seed = 79 }
        in
        check_verdict "burst" ~complete:false ~strong:true (System.run cfg)) ]

let random_workload_tests =
  [ Helpers.qcheck ~count:15 "random workloads: SPA complete"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with
              seed;
              n_transactions = 12;
              n_views = 3 }
        in
        let cfg =
          { (System.default scen) with arrival = System.Poisson 100.0; seed }
        in
        let v = System.verdict (System.run cfg) in
        v.conclusive && v.complete);
    Helpers.qcheck ~count:15 "random workloads: PA strongly consistent"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with
              seed;
              n_transactions = 12;
              n_views = 3 }
        in
        let cfg =
          { (System.default scen) with
            vm_kind = System.Batching_vm;
            arrival = System.Poisson 150.0;
            seed }
        in
        let v = System.verdict (System.run cfg) in
        v.conclusive && v.strongly_consistent);
    Helpers.qcheck ~count:10 "random workloads with aggregate views: SPA complete"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with
              seed;
              n_transactions = 10;
              n_views = 3;
              aggregate_views = true }
        in
        let cfg =
          { (System.default scen) with arrival = System.Poisson 100.0; seed }
        in
        let v = System.verdict (System.run cfg) in
        v.conclusive && v.complete);
    Helpers.qcheck ~count:10 "random multi-source workloads stay consistent"
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let scen =
          Workload.Generator.generate
            { Workload.Generator.default with
              seed;
              n_transactions = 10;
              multi_update_prob = 0.4;
              n_sources = 3 }
        in
        let cfg =
          { (System.default scen) with arrival = System.Poisson 100.0; seed }
        in
        let v = System.verdict (System.run cfg) in
        v.conclusive && v.complete) ]

let tests =
  scenario_tests @ violation_tests @ policy_tests @ partition_tests
  @ spanning_partition_tests @ misc_tests @ random_workload_tests
