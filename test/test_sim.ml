let case = Helpers.case

let rng_tests =
  [ case "same seed, same stream" (fun () ->
        let a = Sim.Rng.create 7 and b = Sim.Rng.create 7 in
        let xs = List.init 20 (fun _ -> Sim.Rng.int a 1000) in
        let ys = List.init 20 (fun _ -> Sim.Rng.int b 1000) in
        Alcotest.(check (list int)) "equal" xs ys);
    case "different seeds differ" (fun () ->
        let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
        let xs = List.init 20 (fun _ -> Sim.Rng.int a 1000000) in
        let ys = List.init 20 (fun _ -> Sim.Rng.int b 1000000) in
        Alcotest.(check bool) "differ" true (xs <> ys));
    case "int respects bound" (fun () ->
        let r = Sim.Rng.create 3 in
        for _ = 1 to 1000 do
          let x = Sim.Rng.int r 17 in
          Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
        done);
    case "int rejects nonpositive bound" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Sim.Rng.int (Sim.Rng.create 1) 0 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "int_range inclusive" (fun () ->
        let r = Sim.Rng.create 5 in
        let seen = Hashtbl.create 8 in
        for _ = 1 to 500 do
          let x = Sim.Rng.int_range r 2 4 in
          Hashtbl.replace seen x ();
          Alcotest.(check bool) "in [2,4]" true (x >= 2 && x <= 4)
        done;
        Alcotest.(check int) "all three hit" 3 (Hashtbl.length seen));
    case "float in [0,bound)" (fun () ->
        let r = Sim.Rng.create 5 in
        for _ = 1 to 1000 do
          let x = Sim.Rng.float r 2.5 in
          Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
        done);
    case "exponential is positive with roughly the right mean" (fun () ->
        let r = Sim.Rng.create 11 in
        let n = 5000 in
        let total = ref 0.0 in
        for _ = 1 to n do
          let x = Sim.Rng.exponential r ~mean:2.0 in
          Alcotest.(check bool) "positive" true (x > 0.0);
          total := !total +. x
        done;
        let mean = !total /. float_of_int n in
        Alcotest.(check bool) "mean near 2" true (mean > 1.8 && mean < 2.2));
    case "split decouples streams" (fun () ->
        let a = Sim.Rng.create 9 in
        let child = Sim.Rng.split a in
        (* Drawing from the child must not change the parent's future. *)
        let b = Sim.Rng.create 9 in
        let _child_b = Sim.Rng.split b in
        let _ = List.init 10 (fun _ -> Sim.Rng.int child 100) in
        Alcotest.(check int) "parent unaffected" (Sim.Rng.int b 1000000)
          (Sim.Rng.int a 1000000));
    case "shuffle is a permutation" (fun () ->
        let r = Sim.Rng.create 13 in
        let l = [ 1; 2; 3; 4; 5; 6 ] in
        let s = Sim.Rng.shuffle r l in
        Alcotest.(check (list int)) "same elements" l (List.sort compare s));
    case "pick returns a member" (fun () ->
        let r = Sim.Rng.create 17 in
        for _ = 1 to 50 do
          Alcotest.(check bool) "member" true
            (List.mem (Sim.Rng.pick r [ "a"; "b"; "c" ]) [ "a"; "b"; "c" ])
        done) ]

let engine_tests =
  [ case "events run in time order" (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        Sim.Engine.schedule_at e 2.0 (fun () -> log := 2 :: !log);
        Sim.Engine.schedule_at e 1.0 (fun () -> log := 1 :: !log);
        Sim.Engine.schedule_at e 3.0 (fun () -> log := 3 :: !log);
        Sim.Engine.run e;
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log));
    case "ties break by insertion order" (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        Sim.Engine.schedule_at e 1.0 (fun () -> log := "a" :: !log);
        Sim.Engine.schedule_at e 1.0 (fun () -> log := "b" :: !log);
        Sim.Engine.run e;
        Alcotest.(check (list string)) "fifo" [ "a"; "b" ] (List.rev !log));
    case "clock advances to event time" (fun () ->
        let e = Sim.Engine.create () in
        Sim.Engine.schedule_at e 5.0 (fun () -> ());
        Sim.Engine.run e;
        Alcotest.(check (float 1e-9)) "now" 5.0 (Sim.Engine.now e));
    case "scheduling in the past raises" (fun () ->
        let e = Sim.Engine.create () in
        Sim.Engine.schedule_at e 5.0 (fun () -> ());
        Sim.Engine.run e;
        Alcotest.(check bool) "raises" true
          (match Sim.Engine.schedule_at e 1.0 (fun () -> ()) with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "schedule_after clamps negative delay" (fun () ->
        let e = Sim.Engine.create () in
        let ran = ref false in
        Sim.Engine.schedule_after e (-1.0) (fun () -> ran := true);
        Sim.Engine.run e;
        Alcotest.(check bool) "ran" true !ran);
    case "handlers can schedule more events" (fun () ->
        let e = Sim.Engine.create () in
        let count = ref 0 in
        let rec tick n =
          if n > 0 then begin
            incr count;
            Sim.Engine.schedule_after e 1.0 (fun () -> tick (n - 1))
          end
        in
        Sim.Engine.schedule_after e 0.0 (fun () -> tick 5);
        Sim.Engine.run e;
        Alcotest.(check int) "5 ticks" 5 !count;
        Alcotest.(check (float 1e-9)) "time" 5.0 (Sim.Engine.now e));
    case "run ~until stops before later events" (fun () ->
        let e = Sim.Engine.create () in
        let ran = ref false in
        Sim.Engine.schedule_at e 10.0 (fun () -> ran := true);
        Sim.Engine.run ~until:5.0 e;
        Alcotest.(check bool) "not yet" false !ran;
        Alcotest.(check (float 1e-9)) "clock at until" 5.0 (Sim.Engine.now e);
        Sim.Engine.run e;
        Alcotest.(check bool) "eventually" true !ran);
    case "pending and processed counters" (fun () ->
        let e = Sim.Engine.create () in
        Sim.Engine.schedule_at e 1.0 (fun () -> ());
        Sim.Engine.schedule_at e 2.0 (fun () -> ());
        Alcotest.(check int) "pending 2" 2 (Sim.Engine.pending e);
        Sim.Engine.run e;
        Alcotest.(check int) "pending 0" 0 (Sim.Engine.pending e);
        Alcotest.(check int) "processed 2" 2 (Sim.Engine.processed e));
    case "step returns false on empty queue" (fun () ->
        Alcotest.(check bool) "empty" false (Sim.Engine.step (Sim.Engine.create ()))) ]

let channel_tests =
  [ case "FIFO even with shrinking latencies" (fun () ->
        let e = Sim.Engine.create () in
        let log = ref [] in
        let latencies = ref [ 1.0; 0.1 ] in
        let next_latency () =
          match !latencies with
          | l :: rest ->
            latencies := rest;
            l
          | [] -> 0.0
        in
        let ch =
          Sim.Channel.create e ~latency:next_latency (fun m -> log := m :: !log)
        in
        Sim.Channel.send ch "first";
        Sim.Channel.send ch "second";
        Sim.Engine.run e;
        Alcotest.(check (list string)) "order preserved" [ "first"; "second" ]
          (List.rev !log));
    case "latency delays delivery" (fun () ->
        let e = Sim.Engine.create () in
        let arrival = ref 0.0 in
        let ch =
          Sim.Channel.create e ~latency:(fun () -> 2.5) (fun () ->
              arrival := Sim.Engine.now e)
        in
        Sim.Channel.send ch ();
        Sim.Engine.run e;
        Alcotest.(check (float 1e-9)) "at 2.5" 2.5 !arrival);
    case "counters" (fun () ->
        let e = Sim.Engine.create () in
        let ch = Sim.Channel.create e ~latency:(fun () -> 1.0) (fun () -> ()) in
        Sim.Channel.send ch ();
        Sim.Channel.send ch ();
        Alcotest.(check int) "sent" 2 (Sim.Channel.sent ch);
        Alcotest.(check int) "in flight" 2 (Sim.Channel.in_flight ch);
        Sim.Engine.run e;
        Alcotest.(check int) "delivered" 2 (Sim.Channel.delivered ch);
        Alcotest.(check int) "drained" 0 (Sim.Channel.in_flight ch));
    case "negative latency clamped" (fun () ->
        let e = Sim.Engine.create () in
        let delivered = ref false in
        let ch =
          Sim.Channel.create e ~latency:(fun () -> -5.0) (fun () ->
              delivered := true)
        in
        Sim.Channel.send ch ();
        Sim.Engine.run e;
        Alcotest.(check bool) "ok" true !delivered) ]

let stats_tests =
  [ case "summary mean/min/max" (fun () ->
        let s = Sim.Stats.Summary.create () in
        List.iter (Sim.Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
        Alcotest.(check (float 1e-9)) "mean" 2.5 (Sim.Stats.Summary.mean s);
        Alcotest.(check (float 1e-9)) "min" 1.0 (Sim.Stats.Summary.min s);
        Alcotest.(check (float 1e-9)) "max" 4.0 (Sim.Stats.Summary.max s);
        Alcotest.(check int) "count" 4 (Sim.Stats.Summary.count s));
    case "summary stddev" (fun () ->
        let s = Sim.Stats.Summary.create () in
        List.iter (Sim.Stats.Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
        Alcotest.(check bool) "sample sd ~ 2.138" true
          (abs_float (Sim.Stats.Summary.stddev s -. 2.13808993) < 1e-6));
    case "empty summary" (fun () ->
        let s = Sim.Stats.Summary.create () in
        Alcotest.(check (float 1e-9)) "mean 0" 0.0 (Sim.Stats.Summary.mean s);
        Alcotest.(check bool) "nan percentile" true
          (Float.is_nan (Sim.Stats.Summary.percentile s 50.0)));
    case "percentiles nearest-rank" (fun () ->
        let s = Sim.Stats.Summary.create () in
        List.iter (Sim.Stats.Summary.add s) (List.init 100 (fun i -> float_of_int (i + 1)));
        Alcotest.(check (float 1e-9)) "p50" 50.0 (Sim.Stats.Summary.percentile s 50.0);
        Alcotest.(check (float 1e-9)) "p95" 95.0 (Sim.Stats.Summary.percentile s 95.0);
        Alcotest.(check (float 1e-9)) "p100" 100.0 (Sim.Stats.Summary.percentile s 100.0));
    case "percentile after incremental adds" (fun () ->
        let s = Sim.Stats.Summary.create () in
        Sim.Stats.Summary.add s 10.0;
        Alcotest.(check (float 1e-9)) "p50 one sample" 10.0
          (Sim.Stats.Summary.percentile s 50.0);
        Sim.Stats.Summary.add s 20.0;
        Alcotest.(check (float 1e-9)) "cache invalidated" 20.0
          (Sim.Stats.Summary.percentile s 100.0));
    case "counter" (fun () ->
        let c = Sim.Stats.Counter.create () in
        Sim.Stats.Counter.incr c;
        Sim.Stats.Counter.incr ~by:4 c;
        Alcotest.(check int) "5" 5 (Sim.Stats.Counter.value c));
    case "time-weighted average" (fun () ->
        let tw = Sim.Stats.Time_weighted.create ~now:0.0 ~initial:0.0 in
        Sim.Stats.Time_weighted.observe tw ~now:1.0 10.0;
        Sim.Stats.Time_weighted.observe tw ~now:3.0 0.0;
        (* 0 for 1s, 10 for 2s, 0 for 1s = 20/4 *)
        Alcotest.(check (float 1e-9)) "avg" 5.0
          (Sim.Stats.Time_weighted.average tw ~now:4.0);
        Alcotest.(check (float 1e-9)) "max" 10.0 (Sim.Stats.Time_weighted.maximum tw));
    case "trace records in order" (fun () ->
        let tr = Sim.Trace.create () in
        Sim.Trace.record tr "a";
        Sim.Trace.recordf tr "b%d" 2;
        Alcotest.(check (list string)) "events" [ "a"; "b2" ] (Sim.Trace.events tr);
        Sim.Trace.clear tr;
        Alcotest.(check int) "cleared" 0 (Sim.Trace.length tr)) ]

let fault_tests =
  [ case "fault hook sees 1-based send indexes" (fun () ->
        let engine = Sim.Engine.create () in
        let seen = ref [] in
        let ch =
          Sim.Channel.create engine ~latency:(fun () -> 0.1) (fun _ -> ())
        in
        Sim.Channel.set_fault ch
          (Some
             (fun i ->
               seen := i :: !seen;
               Sim.Channel.Deliver));
        Sim.Channel.send ch "a";
        Sim.Channel.send ch "b";
        Alcotest.(check (list int)) "indexes" [ 1; 2 ] (List.rev !seen));
    case "drop keeps sent/dropped/in_flight truthful" (fun () ->
        let engine = Sim.Engine.create () in
        let got = ref [] in
        let ch =
          Sim.Channel.create engine ~latency:(fun () -> 0.1) (fun m ->
              got := m :: !got)
        in
        Sim.Channel.set_fault ch
          (Some (fun i -> if i = 2 then Sim.Channel.Drop else Sim.Channel.Deliver));
        List.iter (Sim.Channel.send ch) [ "a"; "b"; "c" ];
        Alcotest.(check int) "sent counts the lost message" 3
          (Sim.Channel.sent ch);
        Alcotest.(check int) "dropped" 1 (Sim.Channel.dropped ch);
        Alcotest.(check int) "in flight before run" 2 (Sim.Channel.in_flight ch);
        Sim.Engine.run engine;
        Alcotest.(check int) "in flight after run" 0 (Sim.Channel.in_flight ch);
        Alcotest.(check (list string)) "b lost" [ "a"; "c" ] (List.rev !got));
    case "duplicate delivers twice and counts once" (fun () ->
        let engine = Sim.Engine.create () in
        let got = ref [] in
        let ch =
          Sim.Channel.create engine ~latency:(fun () -> 0.1) (fun m ->
              got := m :: !got)
        in
        Sim.Channel.set_fault ch
          (Some
             (fun i ->
               if i = 1 then Sim.Channel.Duplicate else Sim.Channel.Deliver));
        Sim.Channel.send ch "a";
        Sim.Channel.send ch "b";
        Sim.Engine.run engine;
        Alcotest.(check (list string)) "aab" [ "a"; "a"; "b" ] (List.rev !got);
        Alcotest.(check int) "duplicated" 1 (Sim.Channel.duplicated ch);
        Alcotest.(check int) "delivered" 3 (Sim.Channel.delivered ch);
        Alcotest.(check int) "drained" 0 (Sim.Channel.in_flight ch));
    case "delay postpones but preserves FIFO for later sends" (fun () ->
        let engine = Sim.Engine.create () in
        let got = ref [] in
        let ch =
          Sim.Channel.create engine ~latency:(fun () -> 0.1) (fun m ->
              got := (Sim.Engine.now engine, m) :: !got)
        in
        Sim.Channel.set_fault ch
          (Some
             (fun i ->
               if i = 1 then Sim.Channel.Delay 1.0 else Sim.Channel.Deliver));
        Sim.Channel.send ch "slow";
        Sim.Channel.send ch "fast";
        Sim.Engine.run engine;
        match List.rev !got with
        | [ (t1, "slow"); (t2, "fast") ] ->
          Alcotest.(check (float 1e-9)) "delayed" 1.1 t1;
          Alcotest.(check bool) "fast clamped behind slow" true (t2 >= t1)
        | _ -> Alcotest.fail "unexpected delivery order") ]

(* The ARQ layer: exactly-once in-order delivery over faulty channels. *)
let reliable_tests =
  let make ?params () =
    let engine = Sim.Engine.create () in
    let got = ref [] in
    let rl =
      Sim.Reliable.create engine ?params ~rng:(Sim.Rng.create 42)
        ~latency:(fun () -> 0.01)
        (fun m -> got := m :: !got)
    in
    (engine, rl, got)
  in
  [ case "in-order exactly-once under drops" (fun () ->
        let engine, rl, got = make () in
        Sim.Channel.set_fault
          (Sim.Reliable.data_channel rl)
          (Some
             (fun i ->
               if i = 2 || i = 4 then Sim.Channel.Drop
               else Sim.Channel.Deliver));
        List.iter (Sim.Reliable.send rl) [ 1; 2; 3; 4; 5 ];
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "payloads" [ 1; 2; 3; 4; 5 ]
          (List.rev !got);
        Alcotest.(check bool) "quiescent" true (Sim.Reliable.quiescent rl);
        let s = Sim.Reliable.stats rl in
        Alcotest.(check bool) "retransmitted" true (s.retransmits > 0));
    case "receiver drops duplicated frames" (fun () ->
        let engine, rl, got = make () in
        Sim.Channel.set_fault
          (Sim.Reliable.data_channel rl)
          (Some
             (fun i ->
               if i = 1 then Sim.Channel.Duplicate else Sim.Channel.Deliver));
        List.iter (Sim.Reliable.send rl) [ 1; 2 ];
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "exactly once" [ 1; 2 ] (List.rev !got);
        let s = Sim.Reliable.stats rl in
        Alcotest.(check bool) "dup discarded" true (s.dups_dropped >= 1));
    case "lost acks cause retransmits, not duplicate delivery" (fun () ->
        let engine, rl, got = make () in
        Sim.Channel.set_fault
          (Sim.Reliable.ctrl_channel rl)
          (Some
             (fun i -> if i <= 2 then Sim.Channel.Drop else Sim.Channel.Deliver));
        List.iter (Sim.Reliable.send rl) [ 1; 2; 3 ];
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "exactly once" [ 1; 2; 3 ] (List.rev !got);
        Alcotest.(check bool) "quiescent" true (Sim.Reliable.quiescent rl));
    case "gap triggers a nack before any timeout" (fun () ->
        let engine, rl, got = make () in
        Sim.Channel.set_fault
          (Sim.Reliable.data_channel rl)
          (Some (fun i -> if i = 1 then Sim.Channel.Drop else Sim.Channel.Deliver));
        Sim.Reliable.send rl 1;
        Sim.Reliable.send rl 2;
        (* Run only up to twice the channel latency: enough for frame 2's
           arrival, the nack, and the nack-driven retransmit, but well
           inside the 50ms retransmit timeout. *)
        Sim.Engine.run ~until:0.045 engine;
        Alcotest.(check (list int)) "healed by nack" [ 1; 2 ] (List.rev !got);
        let s = Sim.Reliable.stats rl in
        Alcotest.(check bool) "nacked" true (s.nacks_sent >= 1));
    case "sender gives up after max_retries and reports non-quiescence"
      (fun () ->
        let engine, rl, got =
          make
            ~params:
              { Sim.Reliable.default_params with
                ack_timeout = 0.01;
                max_retries = 3 }
            ()
        in
        Sim.Channel.set_fault
          (Sim.Reliable.data_channel rl)
          (Some (fun _ -> Sim.Channel.Drop));
        Sim.Reliable.send rl 1;
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "nothing delivered" [] !got;
        Alcotest.(check bool) "gave up" true (Sim.Reliable.gave_up rl);
        Alcotest.(check bool) "not quiescent" false (Sim.Reliable.quiescent rl));
    case "epoch bump voids the old stream at the receiver" (fun () ->
        let engine, rl, got = make () in
        (* Lose frame 2 of the old epoch forever, then restart the sender:
           the receiver must adopt the new epoch's sequence instead of
           waiting on the old gap. *)
        Sim.Channel.set_fault
          (Sim.Reliable.data_channel rl)
          (Some (fun i -> if i = 2 then Sim.Channel.Drop else Sim.Channel.Deliver));
        Sim.Reliable.send rl 1;
        Sim.Reliable.send rl 2;
        Sim.Engine.run ~until:0.02 engine;
        Sim.Channel.set_fault (Sim.Reliable.data_channel rl) None;
        ignore (Sim.Reliable.bump_epoch rl);
        Sim.Reliable.send rl 10;
        Sim.Reliable.send rl 11;
        Sim.Engine.run engine;
        Alcotest.(check (list int)) "old prefix + new epoch" [ 1; 10; 11 ]
          (List.rev !got);
        Alcotest.(check bool) "quiescent" true (Sim.Reliable.quiescent rl)) ]

let tests =
  rng_tests @ engine_tests @ channel_tests @ fault_tests @ reliable_tests
  @ stats_tests
