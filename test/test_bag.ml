open Relational

let case = Helpers.case

let t1 = Helpers.ints [ 1 ]

let t2 = Helpers.ints [ 2 ]

let gen = Helpers.Gen.small_bag ~arity:2 ~range:3

let tests =
  [ case "empty" (fun () ->
        Alcotest.(check bool) "is_empty" true (Bag.is_empty Bag.empty);
        Alcotest.(check int) "cardinal" 0 (Bag.cardinal Bag.empty));
    case "add increments multiplicity" (fun () ->
        let b = Bag.add t1 (Bag.add t1 Bag.empty) in
        Alcotest.(check int) "count" 2 (Bag.count b t1);
        Alcotest.(check int) "cardinal" 2 (Bag.cardinal b);
        Alcotest.(check int) "distinct" 1 (Bag.distinct b));
    case "add with count" (fun () ->
        let b = Bag.add ~count:3 t1 Bag.empty in
        Alcotest.(check int) "count" 3 (Bag.count b t1));
    case "add rejects nonpositive count" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Bag.add ~count:0 t1 Bag.empty with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "remove decrements and drops at zero" (fun () ->
        let b = Bag.add ~count:2 t1 Bag.empty in
        let b = Bag.remove t1 b in
        Alcotest.(check int) "one left" 1 (Bag.count b t1);
        let b = Bag.remove t1 b in
        Alcotest.(check bool) "gone" false (Bag.mem b t1));
    case "remove of absent tuple is a no-op" (fun () ->
        Alcotest.check Helpers.bag "same" Bag.empty (Bag.remove t1 Bag.empty));
    case "remove floors at zero" (fun () ->
        let b = Bag.remove ~count:5 t1 (Bag.add t1 Bag.empty) in
        Alcotest.(check int) "zero" 0 (Bag.count b t1));
    case "of_list counts duplicates" (fun () ->
        let b = Bag.of_list [ t1; t2; t1 ] in
        Alcotest.(check int) "t1 twice" 2 (Bag.count b t1);
        Alcotest.(check int) "t2 once" 1 (Bag.count b t2));
    case "to_list expands multiplicities" (fun () ->
        let b = Bag.add ~count:2 t1 Bag.empty in
        Alcotest.(check int) "len" 2 (List.length (Bag.to_list b)));
    case "union adds multiplicities" (fun () ->
        let a = Bag.of_list [ t1 ] and b = Bag.of_list [ t1; t2 ] in
        let u = Bag.union a b in
        Alcotest.(check int) "t1" 2 (Bag.count u t1);
        Alcotest.(check int) "t2" 1 (Bag.count u t2));
    case "diff is monus" (fun () ->
        let a = Bag.of_list [ t1; t1; t2 ] and b = Bag.of_list [ t1; t1; t1 ] in
        let d = Bag.diff a b in
        Alcotest.(check int) "t1 floored" 0 (Bag.count d t1);
        Alcotest.(check int) "t2 kept" 1 (Bag.count d t2));
    case "map merges colliding images" (fun () ->
        let b = Bag.of_list [ Helpers.ints [ 1; 2 ]; Helpers.ints [ 1; 3 ] ] in
        let mapped =
          Bag.map
            (fun t -> Tuple.of_list [ Tuple.get t 0 ])
            b
        in
        Alcotest.(check int) "merged" 2 (Bag.count mapped (Helpers.ints [ 1 ])));
    case "filter" (fun () ->
        let b = Bag.of_list [ t1; t2 ] in
        let f = Bag.filter (fun t -> Tuple.equal t t1) b in
        Alcotest.(check int) "t1" 1 (Bag.count f t1);
        Alcotest.(check bool) "no t2" false (Bag.mem f t2));
    Helpers.qcheck "union is commutative" QCheck2.Gen.(pair gen gen)
      (fun (a, b) -> Bag.equal (Bag.union a b) (Bag.union b a));
    Helpers.qcheck "union is associative"
      QCheck2.Gen.(triple gen gen gen)
      (fun (a, b, c) ->
        Bag.equal (Bag.union a (Bag.union b c)) (Bag.union (Bag.union a b) c));
    Helpers.qcheck "empty is the union identity" gen (fun b ->
        Bag.equal (Bag.union b Bag.empty) b);
    Helpers.qcheck "diff then union restores when disjoint-safe"
      QCheck2.Gen.(pair gen gen)
      (fun (a, b) ->
        (* (a U b) - b = a *)
        Bag.equal (Bag.diff (Bag.union a b) b) a);
    Helpers.qcheck "cardinal is sum of counts" gen (fun b ->
        Bag.cardinal b
        = List.fold_left (fun acc (_, n) -> acc + n) 0 (Bag.to_counted_list b));
    (* Columnar chunks are an alternate carrier for the same bag algebra:
       encode, operate, decode must agree with the boxed operations. *)
    Helpers.qcheck "union through columnar append == Bag.union"
      QCheck2.Gen.(pair gen gen)
      (fun (a, b) ->
        Bag.equal (Bag.union a b)
          (Columnar.to_bag
             (Columnar.append (Columnar.of_bag ~arity:2 a)
                (Columnar.of_bag ~arity:2 b))));
    Helpers.qcheck "counted round-trip through a chunk is lossless" gen
      (fun b ->
        Bag.equal b
          (Bag.of_counted_list
             (Columnar.to_counted_list (Columnar.of_bag ~arity:2 b)))) ]
