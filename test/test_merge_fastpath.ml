(* Merge fast path: coalesced batch application must be invisible — the
   summed per-view deltas, the planned run, and the system-level
   [Coalesced] policy all have to reproduce the per-row baseline exactly
   (same store version sequence, same served reads) — and the fused
   certificate must catch a tampered coalesced sum. *)

open Relational
open Query

let case = Helpers.case

let al ?(delta = Signed_bag.zero) view state = Action_list.delta ~view ~state delta

let plus view state tuple =
  Action_list.delta ~view ~state (Signed_bag.singleton tuple 1)

let ints = Helpers.ints

let store () =
  Warehouse.Store.create
    [ ("A", Helpers.rel (Helpers.int_schema [ "x" ]) [ [ 1 ] ]);
      ("B", Helpers.rel (Helpers.int_schema [ "y" ]) []) ]

(* ---- Signed_bag.coalesce: the sum is only offered when faithful ---- *)

let coalesce_tests =
  [ case "coalesce of nothing is zero" (fun () ->
        Alcotest.(check (option Helpers.signed_bag))
          "zero"
          (Some Signed_bag.zero)
          (Signed_bag.coalesce [] ~bag:(Helpers.bag_of [ [ 1 ] ])));
    case "a singleton coalesces to itself" (fun () ->
        let d = Signed_bag.of_list [ (ints [ 1 ], -2); (ints [ 2 ], 1) ] in
        Alcotest.(check (option Helpers.signed_bag))
          "itself" (Some d)
          (Signed_bag.coalesce [ d ] ~bag:(Helpers.bag_of [ [ 1 ]; [ 1 ] ])));
    case "safe deltas sum and match sequential application" (fun () ->
        let bag = Helpers.bag_of [ [ 1 ]; [ 1 ] ] in
        let deltas =
          [ Signed_bag.singleton (ints [ 1 ]) (-1);
            Signed_bag.singleton (ints [ 1 ]) (-1);
            Signed_bag.singleton (ints [ 1 ]) 1 ]
        in
        match Signed_bag.coalesce deltas ~bag with
        | None -> Alcotest.fail "expected a coalesced sum"
        | Some sum ->
          Alcotest.check Helpers.signed_bag "sum"
            (Signed_bag.singleton (ints [ 1 ]) (-1))
            sum;
          Alcotest.check Helpers.bag "faithful"
            (List.fold_left (fun b d -> Signed_bag.apply d b) bag deltas)
            (Signed_bag.apply sum bag));
    case "the clamp counterexample is refused" (fun () ->
        (* Deleting an absent tuple floors at zero, so [-1; +2] leaves 2
           when applied one by one but the sum (+1) would leave 1. The
           guard must refuse rather than hand back an unfaithful sum. *)
        let bag = Bag.empty in
        let deltas =
          [ Signed_bag.singleton (ints [ 9 ]) (-1);
            Signed_bag.singleton (ints [ 9 ]) 2 ]
        in
        let sequential =
          List.fold_left (fun b d -> Signed_bag.apply d b) bag deltas
        in
        Alcotest.(check int) "sequential keeps 2" 2 (Bag.count sequential (ints [ 9 ]));
        Alcotest.(check (option Helpers.signed_bag))
          "refused" None
          (Signed_bag.coalesce deltas ~bag));
    Helpers.qcheck ~count:300 "coalesce: Some sum is always faithful"
      QCheck2.Gen.(
        pair
          (Helpers.Gen.small_bag ~arity:1 ~range:3)
          (list_size (int_range 0 5) (Helpers.Gen.small_signed ~arity:1 ~range:3)))
      (fun (bag, deltas) ->
        match Signed_bag.coalesce deltas ~bag with
        | None -> true (* refusing is always allowed *)
        | Some sum ->
          Bag.equal
            (List.fold_left (fun b d -> Signed_bag.apply d b) bag deltas)
            (Signed_bag.apply sum bag)) ]

(* ---- Vut incremental row counters ---- *)

let vut_views = [ "V1"; "V2"; "V3" ]

let vut_tests =
  [ Helpers.qcheck ~count:200 "white/red counters match a column scan"
      QCheck2.Gen.(
        list_size (int_range 0 5)
          (pair
             (list_size (return 3) bool)
             (list_size (int_range 0 6)
                (pair (int_range 0 2)
                   (oneofl [ Mvc.Vut.White; Mvc.Vut.Red; Mvc.Vut.Gray; Mvc.Vut.Black ])))))
      (fun rows ->
        let vut = Mvc.Vut.create ~views:vut_views in
        List.iteri
          (fun i (members, recolors) ->
            let row = i + 1 in
            let rel =
              List.filteri (fun j _ -> List.nth members j) vut_views
            in
            Mvc.Vut.add_row vut ~row ~rel;
            List.iter
              (fun (vi, color) ->
                Mvc.Vut.set_color vut ~row ~view:(List.nth vut_views vi) color)
              recolors)
          rows;
        List.for_all
          (fun row ->
            let scan color =
              List.length
                (List.filter
                   (fun view ->
                     (Mvc.Vut.entry vut ~row ~view).Mvc.Vut.color = color)
                   vut_views)
            in
            Mvc.Vut.white_count vut ~row = scan Mvc.Vut.White
            && Mvc.Vut.red_count vut ~row = scan Mvc.Vut.Red)
          (Mvc.Vut.rows vut)) ]

(* ---- Store.plan_run / commit_run vs one-at-a-time apply ---- *)

let sample_run =
  [ Warehouse.Wt.make ~rows:[ 1 ]
      [ plus "A" 1 (ints [ 2 ]); plus "B" 1 (ints [ 7 ]) ];
    Warehouse.Wt.make ~rows:[ 2 ]
      [ al ~delta:(Signed_bag.of_list [ (ints [ 1 ], -1); (ints [ 3 ], 1) ]) "A" 2 ];
    Warehouse.Wt.make ~rows:[ 3 ] [ plus "A" 3 (ints [ 2 ]) ] ]

(* Two action lists on the same view where the first would clamp: the
   per-(transaction, view) sum is unfaithful, so the planner must fall
   back to list-by-list application for that group. *)
let clamping_run =
  [ Warehouse.Wt.make ~rows:[ 1 ]
      [ al ~delta:(Signed_bag.singleton (ints [ 9 ]) (-1)) "A" 1;
        al ~delta:(Signed_bag.singleton (ints [ 9 ]) 2) "A" 1 ];
    Warehouse.Wt.make ~rows:[ 2 ] [ plus "B" 2 (ints [ 4 ]) ] ]

let states_equal a b =
  List.length a = List.length b && List.for_all2 Database.equal a b

let commit_rows s =
  List.map
    (fun c -> c.Warehouse.Store.transaction.Warehouse.Wt.rows)
    (Warehouse.Store.commits s)

let sequential_baseline run =
  let s = store () in
  List.iteri (fun i wt -> Warehouse.Store.apply s ~time:(float_of_int i) wt) run;
  s

let store_tests =
  [ case "commit_run records the states apply would have" (fun () ->
        let seq = sequential_baseline sample_run in
        let s = store () in
        let plan = Warehouse.Store.commit_run s ~time:5.0 sample_run in
        Alcotest.(check bool) "states" true
          (states_equal (Warehouse.Store.states seq) (Warehouse.Store.states s));
        Alcotest.(check (list (list int)))
          "commit rows" (commit_rows seq) (commit_rows s);
        Alcotest.(check bool) "summing cancelled nothing here" true
          (plan.Warehouse.Store.coalesced_out <= plan.Warehouse.Store.coalesced_in);
        Alcotest.(check int) "no fallbacks" 0 plan.Warehouse.Store.seq_fallbacks);
    case "plan_run + apply_planned preserves per-item commit times" (fun () ->
        let seq = sequential_baseline sample_run in
        let s = store () in
        let plan = Warehouse.Store.plan_run s sample_run in
        List.iteri
          (fun i (wt, db) ->
            Warehouse.Store.apply_planned s ~time:(float_of_int i) wt db)
          plan.Warehouse.Store.planned;
        Alcotest.(check bool) "states" true
          (states_equal (Warehouse.Store.states seq) (Warehouse.Store.states s));
        Alcotest.(check (list (float 1e-9)))
          "times"
          (List.map (fun c -> c.Warehouse.Store.time) (Warehouse.Store.commits seq))
          (List.map (fun c -> c.Warehouse.Store.time) (Warehouse.Store.commits s)));
    case "clamping group falls back and still matches apply" (fun () ->
        let seq = sequential_baseline clamping_run in
        let s = store () in
        let plan = Warehouse.Store.commit_run s ~time:2.0 clamping_run in
        Alcotest.(check bool) "states" true
          (states_equal (Warehouse.Store.states seq) (Warehouse.Store.states s));
        Alcotest.(check bool) "fallback counted" true
          (plan.Warehouse.Store.seq_fallbacks >= 1));
    case "run_tasks receives the independent per-view walks" (fun () ->
        let seq = sequential_baseline sample_run in
        let s = store () in
        let fanned = ref 0 in
        let plan =
          Warehouse.Store.plan_run s sample_run
            ~run_tasks:(fun tasks ->
              fanned := List.length tasks;
              List.iter (fun task -> task ()) tasks)
        in
        List.iteri
          (fun i (wt, db) ->
            Warehouse.Store.apply_planned s ~time:(float_of_int i) wt db)
          plan.Warehouse.Store.planned;
        Alcotest.(check bool) "walk per touched view" true (!fanned >= 2);
        Alcotest.(check bool) "states" true
          (states_equal (Warehouse.Store.states seq) (Warehouse.Store.states s))) ]

(* ---- Submitter.submit_run: same schedule as item-by-item submit ---- *)

let submitter_setup ?on_plan () =
  let engine = Sim.Engine.create () in
  let s = store () in
  let committed = ref [] in
  let sub =
    Warehouse.Submitter.create engine ~policy:Warehouse.Submitter.Serial
      ~commit_latency:(fun () -> 1.0)
      ~store:s ?on_plan
      ~on_commit:(fun wt ->
        committed := (Sim.Engine.now engine, wt.Warehouse.Wt.rows) :: !committed)
      ()
  in
  (engine, s, sub, committed)

let submitter_tests =
  [ case "submit_run commits exactly like per-item submit" (fun () ->
        let engine1, s1, sub1, committed1 = submitter_setup () in
        List.iter (Warehouse.Submitter.submit sub1) sample_run;
        Sim.Engine.run engine1;
        let plans = ref 0 in
        let engine2, s2, sub2, committed2 =
          submitter_setup ~on_plan:(fun _ -> incr plans) ()
        in
        Warehouse.Submitter.submit_run sub2 sample_run;
        Sim.Engine.run engine2;
        Alcotest.(check (list (pair (float 1e-9) (list int))))
          "commit log" (List.rev !committed1) (List.rev !committed2);
        Alcotest.(check bool) "states" true
          (states_equal (Warehouse.Store.states s1) (Warehouse.Store.states s2));
        Alcotest.(check int) "planned once" 1 !plans);
    case "on_plan sees the coalescing counters" (fun () ->
        let seen = ref None in
        let engine, _, sub, _ =
          submitter_setup ~on_plan:(fun p -> seen := Some p) ()
        in
        Warehouse.Submitter.submit_run sub clamping_run;
        Sim.Engine.run engine;
        match !seen with
        | None -> Alcotest.fail "on_plan never fired"
        | Some p ->
          Alcotest.(check bool) "out <= in" true
            (p.Warehouse.Store.coalesced_out <= p.Warehouse.Store.coalesced_in);
          Alcotest.(check bool) "clamp fallback surfaced" true
            (p.Warehouse.Store.seq_fallbacks >= 1)) ]

(* ---- Wal.append_group: one durable frame per applied run ---- *)

let wal_tests =
  [ case "append_group syncs once for the whole run" (fun () ->
        let w : (int list, int) Durable.Wal.t =
          Durable.Wal.create ~group_commit:100 ()
        in
        Durable.Wal.append_group w [ 1; 2; 3 ];
        Alcotest.(check int) "one sync" 1 (Durable.Wal.stats w).Durable.Disk.syncs;
        let _, tail = Durable.Wal.recover w in
        Alcotest.(check (list int)) "all durable" [ 1; 2; 3 ] tail);
    case "an empty group neither appends nor syncs" (fun () ->
        let w : (int list, int) Durable.Wal.t =
          Durable.Wal.create ~group_commit:100 ()
        in
        Durable.Wal.append_group w [];
        Alcotest.(check int) "no sync" 0 (Durable.Wal.stats w).Durable.Disk.syncs;
        let _, tail = Durable.Wal.recover w in
        Alcotest.(check (list int)) "nothing" [] tail) ]

(* ---- Relation.index_stats ---- *)

let index_tests =
  [ case "index_stats reflects the memoized index population" (fun () ->
        let r =
          Helpers.rel (Helpers.int_schema [ "x"; "y" ]) [ [ 1; 1 ]; [ 2; 1 ]; [ 3; 2 ] ]
        in
        Alcotest.(check int) "no index yet" 0 (List.length (Relation.index_stats r));
        let _ = Relation.index r ~key_pos:[| 0 |] in
        match Relation.index_stats r with
        | [ o ] ->
          Alcotest.(check int) "live" 3 o.Bag_index.live;
          Alcotest.(check int) "no tombstones" 0 o.Bag_index.tombstones;
          Alcotest.(check bool) "slots cover live" true (o.Bag_index.slots >= o.Bag_index.live)
        | stats ->
          Alcotest.failf "expected one index, saw %d" (List.length stats)) ]

(* ---- Metrics.coalesce_cancel_ratio ---- *)

let metrics_tests =
  [ case "cancel ratio is (in - out) / in, zero when idle" (fun () ->
        let m = Whips.Metrics.create () in
        Alcotest.(check (float 1e-9)) "idle" 0.0
          (Whips.Metrics.coalesce_cancel_ratio m);
        Atomic.set m.Whips.Metrics.coalesced_in 8;
        Atomic.set m.Whips.Metrics.coalesced_out 6;
        Alcotest.(check (float 1e-9)) "quarter" 0.25
          (Whips.Metrics.coalesce_cancel_ratio m)) ]

(* ---- System law: Coalesced == Per_message, end to end ---- *)

let gen_scenario seed =
  Workload.Generator.generate
    { Workload.Generator.default with
      seed;
      n_relations = 3;
      n_views = 2;
      n_transactions = 8;
      initial_tuples = 4 }

let sys_run ~batch ~domains scen =
  Whips.System.run
    { (Whips.System.default scen) with
      merge_batch = batch;
      arrival = Whips.System.Uniform 0.02;
      reads = Some Whips.System.default_reads;
      parallel =
        { Parallel.Config.domains; shards = domains; model_overlap = false };
      seed = 9 }

let signature (r : Whips.System.result) =
  ( Atomic.get r.Whips.System.metrics.Whips.Metrics.commits,
    Atomic.get r.Whips.System.metrics.Whips.Metrics.actions_applied,
    r.Whips.System.metrics.Whips.Metrics.completed_at,
    List.map
      (fun v -> Whips.System.view_contents r (Query.View.name v))
      r.Whips.System.config.Whips.System.scenario.Workload.Scenarios.views )

let signatures_equal (c1, a1, t1, v1) (c2, a2, t2, v2) =
  c1 = c2 && a1 = a2 && t1 = t2
  && List.length v1 = List.length v2
  && List.for_all2 Bag.equal v1 v2

let read_signature (r : Whips.System.result) =
  match r.Whips.System.serving with
  | None -> []
  | Some s ->
    List.map
      (fun rd ->
        ( rd.Whips.System.read_session,
          rd.Whips.System.read_version,
          rd.Whips.System.read_served,
          Bag.to_list rd.Whips.System.read_result ))
      s.Whips.System.reads_served

let system_tests =
  [ Helpers.qcheck ~count:5
      "coalesced run == per-row run (states, trace, reads; columnar x domains)"
      (QCheck2.Gen.int_range 0 999)
      (fun seed ->
        let scen = gen_scenario seed in
        List.for_all
          (fun columnar ->
            Helpers.with_columnar columnar (fun () ->
                List.for_all
                  (fun domains ->
                    let on = sys_run ~batch:Whips.System.Coalesced ~domains scen
                    and off =
                      sys_run ~batch:Whips.System.Per_message ~domains scen
                    in
                    signatures_equal (signature on) (signature off)
                    && states_equal
                         (Warehouse.Store.states on.Whips.System.store)
                         (Warehouse.Store.states off.Whips.System.store)
                    && read_signature on = read_signature off
                    && Whips.System.verdict on = Whips.System.verdict off)
                  [ 1; 4 ]))
          [ false; true ]) ]

(* ---- Fused certificate: catches a tampered coalesced sum ---- *)

let fused_tests =
  [ case "certify_fused accepts a faithful batch, rejects a tampered sum"
      (fun () ->
        let a = plus "A" 1 (ints [ 2 ]) and b = plus "A" 2 (ints [ 3 ]) in
        let s = store () in
        let pre = Warehouse.Store.initial s in
        Warehouse.Store.apply s ~time:1.0
          (Warehouse.Wt.make ~rows:[ 1; 2 ] [ a; b ]);
        let post =
          match List.rev (Warehouse.Store.states s) with
          | latest :: _ -> latest
          | [] -> Alcotest.fail "no states"
        in
        let batch =
          { Consistency.Checker.fb_parts = [ ([ 1 ], [ a ]); ([ 2 ], [ b ]) ];
            fb_rows = [ 1; 2 ];
            fb_actions = [ a; b ];
            fb_pre = pre;
            fb_post = post }
        in
        let ok =
          Consistency.Checker.certify_fused
            ~emitted:[ [ 1 ]; [ 2 ] ]
            ~batches:[ batch ]
        in
        Alcotest.(check bool) "faithful batch certifies" true
          (Consistency.Checker.certified_fused ok);
        (* Tampered sum: the recorded post-state pretends the batch
           changed nothing — replaying the parts exposes it. *)
        let tampered =
          Consistency.Checker.certify_fused
            ~emitted:[ [ 1 ]; [ 2 ] ]
            ~batches:[ { batch with Consistency.Checker.fb_post = pre } ]
        in
        Alcotest.(check bool) "exactness broken" false
          tampered.Consistency.Checker.fused_exact;
        Alcotest.(check bool) "coverage untouched" true
          tampered.Consistency.Checker.fused_coverage;
        Alcotest.(check bool) "rejected" false
          (Consistency.Checker.certified_fused tampered));
    case "a fused system run certifies; tampering its parts breaks it"
      (fun () ->
        let scen = gen_scenario 31 in
        let r =
          Whips.System.run
            { (Whips.System.default scen) with
              merge_batch = Whips.System.Fused;
              arrival = Whips.System.Uniform 0.02;
              seed = 9 }
        in
        let cert = Whips.System.fused_certificate r in
        Alcotest.(check bool) "certified" true
          (Consistency.Checker.certified_fused cert);
        match r.Whips.System.fused with
        | None -> Alcotest.fail "fused run recorded no batches"
        | Some (emitted, parts) ->
          (* Drop the action lists of the first part of the first batch:
             the claimed coalesced content no longer matches what was
             committed. *)
          let tampered_parts =
            match parts with
            | ((rows, _ :: _) :: rest_parts) :: rest ->
              ((rows, []) :: rest_parts) :: rest
            | _ -> Alcotest.fail "expected a non-empty first batch"
          in
          let cert' =
            Whips.System.fused_certificate
              { r with Whips.System.fused = Some (emitted, tampered_parts) }
          in
          Alcotest.(check bool) "tampering detected" false
            (Consistency.Checker.certified_fused cert'));
    case "fused_certificate rejects non-fused runs" (fun () ->
        let r = sys_run ~batch:Whips.System.Coalesced ~domains:1 (gen_scenario 31) in
        Alcotest.(check bool) "invalid_arg" true
          (match Whips.System.fused_certificate r with
          | exception Invalid_argument _ -> true
          | _ -> false)) ]

let tests =
  coalesce_tests @ vut_tests @ store_tests @ submitter_tests @ wal_tests
  @ index_tests @ metrics_tests @ system_tests @ fused_tests
