(* The durable warehouse: WAL + checkpoint unit laws, pinned
   process-crash recovery scenarios, and the recovery certificate.

   The Disk/Wal units pin the crash-consistency contract: group commit
   batches syncs, a crash loses at most one unsynced batch and leaves a
   torn tail that recovery detects and cuts, and checkpoints truncate
   replay work while surviving crashes.

   The pinned crash scenarios kill each stateful singleton process
   (merge, integrator, warehouse) mid-run under the acked reliability
   layer and require the recovered run to end in the exact final
   warehouse state of a crash-free twin — same commits, same contents —
   with the recovery certificate holding: no committed application lost,
   none applied twice, and every monotonic session's served versions
   nondecreasing across the restart. Without the reliability layer the
   crashed process stays dead and the run is stuck but safe: the
   committed history is a byte-exact prefix of the crash-free twin's. *)

open Whips
open Relational

let case = Helpers.case

let acked = System.Acked Sim.Reliable.default_params

let db = Alcotest.testable Database.pp Database.equal

let strong_or_better v = Consistency.Checker.(at_least Strong) v

let mentions needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- Disk / Wal unit laws ---- *)

let wal_tests =
  [ case "group commit batches syncs; a full batch flushes itself" (fun () ->
        let w : (unit, int) Durable.Wal.t =
          Durable.Wal.create ~group_commit:3 ()
        in
        Durable.Wal.append w 1;
        Durable.Wal.append w 2;
        Alcotest.(check int) "two buffered" 2 (Durable.Wal.pending w);
        Alcotest.(check int) "no sync yet" 0 (Durable.Wal.stats w).Durable.Disk.syncs;
        Durable.Wal.append w 3;
        Alcotest.(check int) "batch flushed" 0 (Durable.Wal.pending w);
        Alcotest.(check int) "one sync" 1 (Durable.Wal.stats w).Durable.Disk.syncs;
        let ck, tail = Durable.Wal.recover w in
        Alcotest.(check bool) "no checkpoint" true (ck = None);
        Alcotest.(check (list int)) "all three durable" [ 1; 2; 3 ] tail);
    case "a crash loses the unsynced batch; the torn tail is cut" (fun () ->
        let w : (unit, int) Durable.Wal.t =
          Durable.Wal.create ~group_commit:8 ()
        in
        List.iter (Durable.Wal.append w) [ 1; 2 ];
        Durable.Wal.sync w;
        List.iter (Durable.Wal.append w) [ 3; 4; 5 ];
        Durable.Wal.crash w;
        let ck, tail = Durable.Wal.recover w in
        Alcotest.(check bool) "no checkpoint" true (ck = None);
        Alcotest.(check (list int)) "synced prefix survives" [ 1; 2 ] tail;
        Alcotest.(check bool) "torn tail detected" true
          ((Durable.Wal.stats w).Durable.Disk.torn_discarded >= 1);
        (* A recovered log continues appending cleanly. *)
        Durable.Wal.append w 6;
        Durable.Wal.sync w;
        let _, tail = Durable.Wal.recover w in
        Alcotest.(check (list int)) "appends continue after the cut"
          [ 1; 2; 6 ] tail);
    case "checkpoint truncates the log and survives a crash" (fun () ->
        let w : (int list, int) Durable.Wal.t = Durable.Wal.create () in
        List.iter (Durable.Wal.append w) [ 1; 2; 3; 4 ];
        Durable.Wal.checkpoint w [ 10; 20 ];
        Alcotest.(check int) "records truncated" 4
          (Durable.Wal.stats w).Durable.Disk.truncated_records;
        List.iter (Durable.Wal.append w) [ 5; 6 ];
        (* group_commit 1: both appends synced, so the crash loses
           nothing. *)
        Durable.Wal.crash w;
        let ck, tail = Durable.Wal.recover w in
        Alcotest.(check (option (list int))) "checkpoint survives"
          (Some [ 10; 20 ]) ck;
        Alcotest.(check (list int)) "tail is post-checkpoint only" [ 5; 6 ]
          tail);
    case "incremental segments accumulate and replay in order" (fun () ->
        let w : (int list, int) Durable.Wal.t = Durable.Wal.create () in
        List.iter (Durable.Wal.append w) [ 1; 2 ];
        Durable.Wal.checkpoint_add w [ 1; 2 ];
        List.iter (Durable.Wal.append w) [ 3; 4 ];
        Durable.Wal.checkpoint_add w [ 3; 4 ];
        Durable.Wal.append w 5;
        Durable.Wal.crash w;
        let cks, tail = Durable.Wal.recover_segments w in
        Alcotest.(check (list (list int))) "segments oldest first"
          [ [ 1; 2 ]; [ 3; 4 ] ] cks;
        Alcotest.(check (list int)) "synced tail after last segment" [ 5 ]
          tail;
        Alcotest.(check int) "each segment truncated its log" 4
          (Durable.Wal.stats w).Durable.Disk.truncated_records;
        (* A full checkpoint collapses the segment chain back to one. *)
        Durable.Wal.checkpoint w [ 1; 2; 3; 4; 5 ];
        let cks, tail = Durable.Wal.recover_segments w in
        Alcotest.(check (list (list int))) "one segment after full ck"
          [ [ 1; 2; 3; 4; 5 ] ] cks;
        Alcotest.(check (list int)) "log empty after full ck" [] tail);
    case "sealed checkpoints adopt the log image verbatim" (fun () ->
        let w : (unit, int) Durable.Wal.t =
          Durable.Wal.create ~group_commit:3 ()
        in
        List.iter (Durable.Wal.append w) [ 1; 2 ];
        (* Seal must cover buffered-but-unsynced records too. *)
        Durable.Wal.seal w;
        Alcotest.(check int) "nothing left pending" 0 (Durable.Wal.pending w);
        List.iter (Durable.Wal.append w) [ 3; 4; 5 ];
        Durable.Wal.seal w;
        List.iter (Durable.Wal.append w) [ 6; 7 ];
        Durable.Wal.crash w;
        let ck, tail = Durable.Wal.recover_sealed w in
        Alcotest.(check (list int)) "sealed history in order" [ 1; 2; 3; 4; 5 ]
          ck;
        Alcotest.(check (list int)) "no durable tail survived the crash" []
          tail;
        let stats = Durable.Wal.stats w in
        Alcotest.(check int) "two seals counted" 2
          stats.Durable.Disk.checkpoints;
        Alcotest.(check int) "seals truncated their records" 5
          stats.Durable.Disk.truncated_records;
        (* An empty-image seal is pure bookkeeping: no new segment. *)
        Durable.Wal.seal w;
        let ck, _ = Durable.Wal.recover_sealed w in
        Alcotest.(check (list int)) "empty seal adds no segment"
          [ 1; 2; 3; 4; 5 ] ck) ]

(* ---- pinned process-crash recovery ---- *)

let crash_cfg ?reads ?(seed = 1) fault =
  { (System.default Workload.Scenarios.paper_views) with
    faults = [ fault ];
    reliability = acked;
    arrival = System.Poisson 60.0;
    reads;
    seed }

(* Run the faulted config and its crash-free twin; the recovered run
   must land in the twin's exact final state with the certificate
   holding. Returns the durability report for fault-specific checks. *)
let check_recovers fault =
  let cfg = crash_cfg fault in
  let crash = System.run cfg in
  let clean = System.run { cfg with faults = [] } in
  Alcotest.(check bool) "not stuck" false crash.stuck;
  Alcotest.(check int) "crashed" 1 (Atomic.get crash.metrics.Metrics.crashes);
  Alcotest.(check bool) "recovered" true
    (Atomic.get crash.metrics.Metrics.recoveries >= 1);
  Alcotest.check db "final state matches the crash-free twin"
    (Warehouse.Store.snapshot clean.store)
    (Warehouse.Store.snapshot crash.store);
  Alcotest.(check int) "same commit count"
    (Warehouse.Store.commit_count clean.store)
    (Warehouse.Store.commit_count crash.store);
  Alcotest.(check bool) "still consistent" true
    (strong_or_better (System.verdict crash));
  let cert = System.recovery_certificate crash in
  Alcotest.(check bool)
    (Format.asprintf "recovery certificate: %a"
       Consistency.Checker.pp_certificate cert)
    true
    (Consistency.Checker.certified cert);
  match crash.durability with
  | None -> Alcotest.fail "durable layer should be forced on"
  | Some d ->
    Alcotest.(check bool) "the WAL saw traffic" true (d.System.wal_appends > 0);
    d

let crash_tests =
  [ case "crashed merge recovers: state transfer + VM resync" (fun () ->
        let d =
          check_recovers
            (System.Crash_merge { at_event = 3; restart_after = 0.05 })
        in
        (* Merge recovery re-derives WTs for already-submitted rows; the
           idempotence guard at the submitter drops them. *)
        Alcotest.(check bool) "recovery took simulated time" true
          (d.System.recovery_time > 0.0));
    case "crashed integrator recovers: checkpoint + WAL replay + re-fetch"
      (fun () ->
        let d =
          check_recovers
            (System.Crash_integrator { at_event = 2; restart_after = 0.05 })
        in
        Alcotest.(check bool) "recovery took simulated time" true
          (d.System.recovery_time > 0.0));
    case "crashed warehouse recovers: store rebuilt from checkpoint + WAL"
      (fun () ->
        let d =
          check_recovers
            (System.Crash_warehouse { at_event = 2; restart_after = 0.05 })
        in
        Alcotest.(check bool) "commits were restored" true
          (d.System.commits_restored > 0));
    case "warehouse crash with serving attached: reads stay monotonic"
      (fun () ->
        let cfg =
          crash_cfg ~reads:System.default_reads ~seed:3
            (System.Crash_warehouse { at_event = 2; restart_after = 0.05 })
        in
        let r = System.run cfg in
        Alcotest.(check bool) "not stuck" false r.stuck;
        Alcotest.(check bool) "reads were served" true
          (Atomic.get r.metrics.Metrics.reads > 0);
        let cert = System.recovery_certificate r in
        Alcotest.(check bool) "served versions never went backwards" true
          cert.Consistency.Checker.monotonic_serving;
        Alcotest.(check bool)
          (Format.asprintf "certificate: %a" Consistency.Checker.pp_certificate
             cert)
          true
          (Consistency.Checker.certified cert));
    case "crashed merge without the reliability layer stays dead but safe"
      (fun () ->
        let cfg =
          { (crash_cfg (System.Crash_merge { at_event = 3; restart_after = 0.05 }))
            with reliability = System.Off }
        in
        let crash = System.run cfg in
        let clean = System.run { cfg with faults = [] } in
        Alcotest.(check bool) "stuck" true crash.stuck;
        Alcotest.(check int) "crashed" 1
          (Atomic.get crash.metrics.Metrics.crashes);
        Alcotest.(check int) "no recovery" 0
          (Atomic.get crash.metrics.Metrics.recoveries);
        (* Nothing wrong was merged: the committed history is a prefix
           of the crash-free twin's. *)
        let crashed = Warehouse.Store.commits crash.store in
        let full = Warehouse.Store.commits clean.store in
        Alcotest.(check bool) "a strict prefix committed" true
          (List.length crashed < List.length full);
        List.iteri
          (fun i (c : Warehouse.Store.commit) ->
            let c' = List.nth full i in
            Alcotest.check db
              (Printf.sprintf "state %d matches the twin" (i + 1))
              c'.Warehouse.Store.state c.Warehouse.Store.state)
          crashed) ]

(* ---- configuration-corner validation ---- *)

let rejects name expected cfg =
  case name (fun () ->
      Alcotest.check_raises "invalid_arg" (Invalid_argument expected)
        (fun () -> ignore (System.run cfg)))

let validation_tests =
  let fault = System.Crash_merge { at_event = 1; restart_after = 0.05 } in
  let base = crash_cfg fault in
  [ rejects "process crashes need the pipelined runtime"
      "System: process crash faults (merge/integrator/warehouse) need the \
       pipelined runtime"
      { base with merge_kind = System.Sequential };
    rejects "process crashes need Direct REL routing"
      "System: process crash faults require Direct REL routing"
      { base with rel_routing = System.Via_manager };
    rejects "process crashes need the semantic filter off"
      "System: process crash faults require semantic_filter = false"
      { base with semantic_filter = true };
    rejects "process crashes need complete view managers"
      "System: process crash faults require Complete_vm or Selfmaint_vm view \
       managers"
      { base with vm_kind = System.Batching_vm };
    rejects "process crashes need the SPA merge"
      "System: process crash faults require the SPA merge"
      { base with merge_kind = System.Force_pa };
    rejects "process crashes need Keep_all store retention"
      "System: process crash faults require Keep_all store retention \
       (checkpoints re-apply the full commit history)"
      { base with store_retention = Warehouse.Store.Keep_last 4 } ]

(* ---- give-up is an event, not a post-mortem ---- *)

let give_up_tests =
  [ case "a dead link's give-up is surfaced at event time" (fun () ->
        (* Drop every frame on V2's action-list channel: the sender
           exhausts its retries, fires on_give_up, and the run records
           the death in the timeline at the moment it happened. *)
        let params = { Sim.Reliable.default_params with max_retries = 2 } in
        let cfg =
          { (System.default Workload.Scenarios.paper_views) with
            fault_plan =
              Workload.Fault_plan.random ~drop:1.0 ~duplicate:0.0 ~delay:0.0
                ~delay_by:0.0 "V2->merge";
            reliability = System.Acked params;
            record_timeline = true;
            arrival = System.Poisson 60.0;
            seed = 5 }
        in
        let r = System.run cfg in
        Alcotest.(check bool) "stuck" true r.stuck;
        Alcotest.(check bool) "give-up counted" true
          (Atomic.get r.metrics.Metrics.gave_up >= 1);
        Alcotest.(check bool) "timeline records the death" true
          (List.exists (fun (_, e) -> mentions "gave up" e) r.timeline)) ]

(* ---- Bag_index tombstone compaction under churn ---- *)

(* Deterministic churn driven by a seed: random inserts and deletes of
   live tuples, applied both to the index in place and to a reference
   bag. After every step the index must probe exactly like a fresh
   build, and tombstones must never dominate the stored rows (the
   compaction law: [rows < 16 || 2 * tombstones < rows]). *)
let churn_law seed =
  let rng = Sim.Rng.create (0xC0AC + seed) in
  let bag = ref Bag.empty in
  let idx = Bag_index.of_bag ~key_pos:[| 0 |] !bag in
  let dump i =
    Bag_index.groups i
    |> List.concat_map snd
    |> List.sort compare
  in
  for _ = 1 to 60 do
    let live = Bag.to_list !bag in
    let delta =
      if live = [] || Sim.Rng.int rng 3 > 0 then
        Signed_bag.of_list
          [ (Tuple.ints [ Sim.Rng.int rng 4; Sim.Rng.int rng 6 ], 1) ]
      else
        Signed_bag.of_list
          [ (List.nth live (Sim.Rng.int rng (List.length live)), -1) ]
    in
    Bag_index.apply_signed idx delta;
    bag := Signed_bag.apply delta !bag;
    let occ = Bag_index.occupancy idx in
    let distinct = List.length (List.sort_uniq compare (Bag.to_list !bag)) in
    if occ.Bag_index.live <> distinct then
      QCheck2.Test.fail_reportf "churn %d: live %d <> distinct %d" seed
        occ.Bag_index.live distinct;
    if not (occ.Bag_index.rows < 16 || 2 * occ.Bag_index.tombstones < occ.Bag_index.rows)
    then
      QCheck2.Test.fail_reportf
        "churn %d: tombstones dominate (rows %d, tombstones %d)" seed
        occ.Bag_index.rows occ.Bag_index.tombstones;
    if dump idx <> dump (Bag_index.of_bag ~key_pos:[| 0 |] !bag) then
      QCheck2.Test.fail_reportf "churn %d: probe results diverged" seed
  done;
  true

let bag_index_tests =
  [ Helpers.qcheck ~count:120
      "index churn: probes stay exact, tombstones never dominate"
      QCheck2.Gen.(int_range 0 1_000_000)
      churn_law ]

let tests =
  wal_tests @ crash_tests @ validation_tests @ give_up_tests @ bag_index_tests
