open Relational

let case = Helpers.case

(* ---- value interning ---- *)

let value_gen =
  QCheck2.Gen.(
    oneof
      [ Helpers.Gen.small_value;
        map (fun i -> Value.Int i) int;
        map (fun f -> Value.Float f) (float_range (-1e6) 1e6);
        map (fun s -> Value.String s) (string_size (int_range 0 6)) ])

let intern_tests =
  [ Helpers.qcheck ~count:300 "intern/of_id round-trips"
      value_gen
      (fun v -> Value.equal v (Value.of_id (Value.intern v)));
    Helpers.qcheck ~count:300 "id equality decides value equality"
      QCheck2.Gen.(pair value_gen value_gen)
      (fun (a, b) ->
        Value.equal_ids (Value.intern a) (Value.intern b) = Value.equal a b);
    Helpers.qcheck ~count:300 "compare_ids is consistent with Value.compare"
      QCheck2.Gen.(pair value_gen value_gen)
      (fun (a, b) ->
        compare
          (compare (Value.compare_ids (Value.intern a) (Value.intern b)) 0)
          (compare (Value.compare a b) 0)
        = 0);
    case "NaN interns to a single id" (fun () ->
        let a = Value.intern (Value.Float Float.nan)
        and b = Value.intern (Value.Float Float.nan) in
        Alcotest.(check int) "same id" a b;
        Alcotest.(check bool) "round-trips" true
          (Value.equal (Value.Float Float.nan) (Value.of_id a)));
    case "interning a known value grows no dictionary entry" (fun () ->
        let v = Value.String "columnar-dict-growth-probe" in
        let _ = Value.intern v in
        let before = Value.interned_count () in
        let _ = Value.intern v and _ = Value.intern (Value.Int 123456789) in
        Alcotest.(check int) "count unchanged" before
          (Value.interned_count ()));
    case "null_id is intern Null" (fun () ->
        Alcotest.(check int) "fixed" Value.null_id (Value.intern Value.Null))
  ]

(* ---- chunk round-trips and scans ---- *)

let bag_gen = Helpers.Gen.small_bag ~arity:3 ~range:5

let signed_gen = Helpers.Gen.small_signed ~arity:3 ~range:5

let chunk_tests =
  [ Helpers.qcheck "of_bag/to_bag round-trips" bag_gen (fun b ->
        Bag.equal b (Columnar.to_bag (Columnar.of_bag ~arity:3 b)));
    Helpers.qcheck "of_signed/to_signed round-trips" signed_gen (fun s ->
        Signed_bag.equal s (Columnar.to_signed (Columnar.of_signed ~arity:3 s)));
    Helpers.qcheck "project matches the boxed projection" bag_gen (fun b ->
        let positions = [| 2; 0 |] in
        Bag.equal
          (Bag.map (Tuple.project_pos positions) b)
          (Columnar.to_bag
             (Columnar.project positions (Columnar.of_bag ~arity:3 b))));
    Helpers.qcheck "append matches Signed_bag.sum"
      QCheck2.Gen.(pair signed_gen signed_gen)
      (fun (a, b) ->
        Signed_bag.equal (Signed_bag.sum a b)
          (Columnar.to_signed
             (Columnar.append (Columnar.of_signed ~arity:3 a)
                (Columnar.of_signed ~arity:3 b))));
    Helpers.qcheck "filter on a key id matches the boxed filter" bag_gen
      (fun b ->
        let want = Value.intern (Value.Int 2) in
        let c = Columnar.of_bag ~arity:3 b in
        Bag.equal
          (Bag.filter (fun tup -> Value.equal (Tuple.get tup 1) (Value.Int 2)) b)
          (Columnar.to_bag
             (Columnar.filter ~keep:(fun row -> Columnar.get c 1 row = want) c)));
    Helpers.qcheck "hash_partition is a partition that respects keys"
      signed_gen
      (fun s ->
        let c = Columnar.of_signed ~arity:3 s in
        let parts = Columnar.hash_partition ~shards:3 ~key_pos:[| 0; 2 |] c in
        (* Re-uniting the shards loses nothing... *)
        Signed_bag.equal s
          (Columnar.to_signed
             (Array.fold_left Columnar.append (Columnar.empty ~arity:3) parts))
        (* ...and equal keys never straddle shards: partitioning a
           shard again with the same key positions is the identity on
           occupancy. *)
        && Array.for_all
             (fun part ->
               let again =
                 Columnar.hash_partition ~shards:3 ~key_pos:[| 0; 2 |] part
               in
               Array.exists (fun p -> Columnar.length p = Columnar.length part)
                 again)
             parts);
    case "builder drops zero-multiplicity rows and batches the rest"
      (fun () ->
        let b = Columnar.Builder.create 2 in
        Columnar.Builder.push_row b
          [| Value.intern (Value.Int 1); Value.null_id |]
          2;
        Columnar.Builder.push_row b [| Value.null_id; Value.null_id |] 0;
        Columnar.Builder.push_row b
          [| Value.intern (Value.Int 3); Value.null_id |]
          (-1);
        Alcotest.(check int) "builder length" 2 (Columnar.Builder.length b);
        let c = Columnar.Builder.finish b in
        Alcotest.(check int) "rows" 2 (Columnar.length c);
        Alcotest.(check int) "total" 1 (Columnar.total c);
        Alcotest.(check Helpers.signed_bag) "contents"
          (Signed_bag.of_list
             [ (Tuple.of_list [ Value.Int 1; Value.Null ], 2);
               (Tuple.of_list [ Value.Int 3; Value.Null ], -1) ])
          (Columnar.to_signed c)) ]

(* ---- chunk sharing across relation versions ---- *)

let sharing_tests =
  [ case "Relation.columnar encodes once per version" (fun () ->
        let r = Helpers.rel (Helpers.int_schema [ "x" ]) [ [ 1 ]; [ 2 ] ] in
        let builds0 = Columnar.chunk_builds () in
        let c1 = Relation.columnar r in
        let c2 = Relation.columnar r in
        Alcotest.(check bool) "same chunk" true (c1 == c2);
        Alcotest.(check int) "one encode" (builds0 + 1)
          (Columnar.chunk_builds ()));
    case "an empty delta preserves the relation and its chunk" (fun () ->
        let r = Helpers.rel (Helpers.int_schema [ "x" ]) [ [ 1 ] ] in
        let c = Relation.columnar r in
        let r' = Relation.apply_delta Signed_bag.zero r in
        Alcotest.(check bool) "same record" true (r == r');
        Alcotest.(check bool) "same chunk" true (c == Relation.columnar r'));
    case "a real delta yields a fresh chunk" (fun () ->
        let r = Helpers.rel (Helpers.int_schema [ "x" ]) [ [ 1 ] ] in
        let c = Relation.columnar r in
        let r' =
          Relation.apply_delta (Signed_bag.singleton (Tuple.ints [ 2 ]) 1) r
        in
        Alcotest.(check bool) "new chunk" true (c != Relation.columnar r'));
    case "Relation.index is memoized per key positions" (fun () ->
        let r =
          Helpers.rel (Helpers.int_schema [ "x"; "y" ]) [ [ 1; 2 ]; [ 1; 3 ] ]
        in
        let i1 = Relation.index r ~key_pos:[| 0 |] in
        let i2 = Relation.index r ~key_pos:[| 0 |] in
        let j = Relation.index r ~key_pos:[| 1 |] in
        Alcotest.(check bool) "same index" true (i1 == i2);
        Alcotest.(check bool) "distinct key set, distinct index" true (i1 != j);
        Alcotest.(check int) "x keys" 1 (Bag_index.n_keys i1);
        Alcotest.(check int) "y keys" 2 (Bag_index.n_keys j)) ]

(* ---- allocation-free empty-delta fast paths ---- *)

(* Pin the fast paths by physical equality (the strongest no-work
   observable) and by minor-heap growth: the measurement itself boxes a
   couple of floats, so allow a few words of slack but nothing that
   would admit a fold over the operands. *)
let alloc_slack = 64.0

let empty_delta_tests =
  [ case "Signed_bag.sum with a zero operand returns the other" (fun () ->
        let d = Signed_bag.singleton (Tuple.ints [ 1 ]) 2 in
        Alcotest.(check bool) "right zero" true
          (Signed_bag.sum d Signed_bag.zero == d);
        Alcotest.(check bool) "left zero" true
          (Signed_bag.sum Signed_bag.zero d == d));
    case "Signed_bag.apply of a zero delta returns the bag" (fun () ->
        let b = Helpers.bag_of [ [ 1 ]; [ 2 ] ] in
        Alcotest.(check bool) "same bag" true
          (Signed_bag.apply Signed_bag.zero b == b));
    case "Bag_index.apply_signed of a zero delta allocates nothing"
      (fun () ->
        let idx =
          Bag_index.of_bag ~key_pos:[| 0 |] (Helpers.bag_of [ [ 1; 2 ]; [ 3; 4 ] ])
        in
        let groups_before = Bag_index.groups idx in
        let before = Gc.minor_words () in
        Bag_index.apply_signed idx Signed_bag.zero;
        let after = Gc.minor_words () in
        Alcotest.(check bool) "no allocation" true
          (after -. before <= alloc_slack);
        Alcotest.(check int) "index untouched" (List.length groups_before)
          (List.length (Bag_index.groups idx)));
    case "Signed_bag.sum of two zero deltas allocates nothing" (fun () ->
        let before = Gc.minor_words () in
        let s = Signed_bag.sum Signed_bag.zero Signed_bag.zero in
        let after = Gc.minor_words () in
        Alcotest.(check bool) "zero result" true (Signed_bag.is_zero s);
        Alcotest.(check bool) "no allocation" true
          (after -. before <= alloc_slack)) ]

(* ---- Bag_index probe paths ---- *)

let index_tests =
  [ Helpers.qcheck "fold_ids matches find"
      QCheck2.Gen.(pair bag_gen (Helpers.Gen.int_tuple ~arity:2 ~range:5))
      (fun (b, key) ->
        let idx = Bag_index.of_bag ~key_pos:[| 0; 2 |] b in
        let ids =
          Array.init 2 (fun i -> Value.intern (Tuple.get key i))
        in
        let via_fold =
          Bag_index.fold_ids idx ids
            (fun tup n acc -> Signed_bag.add tup n acc)
            Signed_bag.zero
        in
        let via_find =
          List.fold_left
            (fun acc (tup, n) -> Signed_bag.add tup n acc)
            Signed_bag.zero (Bag_index.find idx key)
        in
        Signed_bag.equal via_fold via_find);
    Helpers.qcheck "apply_signed tracks a rebuilt index"
      QCheck2.Gen.(pair bag_gen signed_gen)
      (fun (b, d) ->
        let idx = Bag_index.of_bag ~key_pos:[| 1 |] b in
        (* apply_signed requires a delta that applies exactly (no
           clamped deletions), so diff the clamped post-state back. *)
        let post = Signed_bag.apply d b in
        let d = Signed_bag.diff_of_bags ~before:b ~after:post in
        Bag_index.apply_signed idx d;
        let rebuilt = Bag_index.of_bag ~key_pos:[| 1 |] post in
        Bag.fold
          (fun tup _ ok ->
            ok
            && Signed_bag.equal
                 (Signed_bag.of_list (Bag_index.find_matching idx tup))
                 (Signed_bag.of_list (Bag_index.find_matching rebuilt tup)))
          post true) ]

let tests =
  intern_tests @ chunk_tests @ sharing_tests @ empty_delta_tests @ index_tests
