open Relational
open Query

let case = Helpers.case

module Vm = Serve.Version_manager
module Cache = Serve.Result_cache
module Session = Serve.Session

(* A warehouse state with one view V holding the tuples 0..k-1, so the
   version published k-th in a test is trivially distinguishable. *)
let db k =
  Database.of_list
    [ ("V",
       Helpers.rel (Helpers.int_schema [ "x" ]) (List.init k (fun i -> [ i ]))) ]

let card_v state = Relation.cardinal (Database.find state "V")

let q = Algebra.base "V"

(* A manager with versions 0..n published at times 1.0, 2.0, ...; version
   i carries i+1 tuples. *)
let vm_with ?retention n =
  let vm = Vm.create ?retention (db 1) in
  for i = 1 to n do
    ignore (Vm.publish vm ~time:(float_of_int i) ~changed:[ "V" ] (db (i + 1)))
  done;
  vm

let version_manager_tests =
  [ case "publish numbers versions; find retrieves them" (fun () ->
        let vm = vm_with 2 in
        Alcotest.(check int) "count" 3 (Vm.version_count vm);
        Alcotest.(check int) "latest" 2 (Vm.latest vm).Vm.index;
        Alcotest.(check int) "v0 state" 1 (card_v (Vm.find vm 0).Vm.state);
        Alcotest.(check int) "v2 state" 3 (card_v (Vm.find vm 2).Vm.state);
        Alcotest.(check (float 1e-9)) "v1 time" 1.0 (Vm.find vm 1).Vm.time;
        Alcotest.(check bool) "beyond latest" true
          (match Vm.find vm 3 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "as_of serves the version visible at an instant" (fun () ->
        let vm = vm_with 2 in
        Alcotest.(check int) "before first" 0 (Vm.as_of vm 0.5).Vm.index;
        Alcotest.(check int) "between" 1 (Vm.as_of vm 1.5).Vm.index;
        Alcotest.(check int) "exact is inclusive" 1 (Vm.as_of vm 1.0).Vm.index;
        Alcotest.(check int) "after last" 2 (Vm.as_of vm 99.0).Vm.index);
    case "as_of ties resolve to the highest index" (fun () ->
        let vm = Vm.create (db 1) in
        ignore (Vm.publish vm ~time:1.0 ~changed:[ "V" ] (db 2));
        ignore (Vm.publish vm ~time:1.0 ~changed:[ "V" ] (db 3));
        ignore (Vm.publish vm ~time:3.0 ~changed:[ "V" ] (db 4));
        Alcotest.(check int) "latest of the tied pair" 2
          (Vm.as_of vm 1.0).Vm.index;
        Alcotest.(check int) "its state" 3 (card_v (Vm.as_of vm 1.0).Vm.state));
    case "publish with a decreasing time is rejected" (fun () ->
        let vm = vm_with 2 in
        Alcotest.(check bool) "raises" true
          (match Vm.publish vm ~time:1.5 ~changed:[] (db 9) with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "Keep_last prunes old versions and advances the watermark" (fun () ->
        let vm = vm_with ~retention:(Vm.Keep_last 2) 3 in
        Alcotest.(check int) "retained" 2 (Vm.retained vm);
        Alcotest.(check int) "watermark" 2 (Vm.watermark vm);
        Alcotest.(check int) "count includes pruned" 4 (Vm.version_count vm);
        Alcotest.(check bool) "find below watermark" true
          (match Vm.find vm 1 with exception Vm.Pruned 1 -> true | _ -> false);
        Alcotest.(check bool) "as_of below watermark" true
          (match Vm.as_of vm 1.5 with
          | exception Vm.Pruned _ -> true
          | _ -> false);
        Alcotest.(check int) "as_of above watermark" 3 (Vm.as_of vm 9.0).Vm.index;
        Alcotest.(check int) "oldest_live" 2 (Vm.oldest_live vm).Vm.index);
    case "Keep_last n < 1 is rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Vm.create ~retention:(Vm.Keep_last 0) (db 1) with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "a pinned version survives pruning until unpinned" (fun () ->
        let vm = Vm.create ~retention:(Vm.Keep_last 1) (db 1) in
        ignore (Vm.pin vm 0);
        ignore (Vm.publish vm ~time:1.0 ~changed:[ "V" ] (db 2));
        ignore (Vm.publish vm ~time:2.0 ~changed:[ "V" ] (db 3));
        Alcotest.(check int) "watermark held at the pin" 0 (Vm.watermark vm);
        Alcotest.(check int) "pinned" 1 (Vm.pinned vm);
        Alcotest.(check int) "pinned state readable" 1
          (card_v (Vm.find vm 0).Vm.state);
        Vm.unpin vm 0;
        Alcotest.(check int) "pruning resumes" 2 (Vm.watermark vm);
        Alcotest.(check int) "nothing pinned" 0 (Vm.pinned vm);
        Alcotest.(check bool) "now pruned" true
          (match Vm.find vm 0 with exception Vm.Pruned 0 -> true | _ -> false));
    case "leases nest per version" (fun () ->
        let vm = Vm.create ~retention:(Vm.Keep_last 1) (db 1) in
        ignore (Vm.pin vm 0);
        ignore (Vm.pin vm 0);
        ignore (Vm.publish vm ~time:1.0 ~changed:[ "V" ] (db 2));
        Vm.unpin vm 0;
        Alcotest.(check int) "still held by the second lease" 0 (Vm.watermark vm);
        Vm.unpin vm 0;
        Alcotest.(check int) "released" 1 (Vm.watermark vm);
        Alcotest.(check bool) "unbalanced unpin" true
          (match Vm.unpin vm 1 with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "oldest_at_least finds the most cache-friendly fresh version"
      (fun () ->
        let vm = vm_with 3 in
        Alcotest.(check int) "mid" 2 (Vm.oldest_at_least vm 1.5).Vm.index;
        Alcotest.(check int) "exact" 1 (Vm.oldest_at_least vm 1.0).Vm.index;
        Alcotest.(check int) "all fresh enough" 0
          (Vm.oldest_at_least vm 0.0).Vm.index;
        Alcotest.(check int) "nothing fresh enough: latest" 3
          (Vm.oldest_at_least vm 9.0).Vm.index);
    Helpers.qcheck ~count:200 "as_of binary search matches a linear oracle"
      QCheck2.Gen.(
        pair
          (list_size (int_range 0 12) (int_range 0 5))
          (int_range (-2) 40))
      (fun (gaps, instant10) ->
        let vm = Vm.create (db 1) in
        let time = ref 0.0 in
        let times =
          List.mapi
            (fun i gap ->
              time := !time +. (float_of_int gap /. 2.0);
              ignore (Vm.publish vm ~time:!time ~changed:[ "V" ] (db (i + 2)));
              !time)
            gaps
        in
        let instant = float_of_int instant10 /. 10.0 in
        (* Oracle: highest index whose time <= instant; version 0 when
           even that fails (the documented before-history fallback). *)
        let expected =
          List.fold_left
            (fun acc (i, t) -> if t <= instant then i else acc)
            0
            (List.mapi (fun i t -> (i + 1, t)) times)
        in
        (Vm.as_of vm instant).Vm.index = expected);
    case "retained versions share column chunks for unchanged relations"
      (fun () ->
        let r0 = Helpers.rel (Helpers.int_schema [ "x" ]) [ [ 1 ]; [ 2 ] ]
        and s = Helpers.rel (Helpers.int_schema [ "y" ]) [ [ 10 ] ] in
        let state0 = Database.of_list [ ("R", r0); ("S", s) ] in
        let vm = Vm.create state0 in
        (* Each publish rebinds R through a delta and leaves S's record
           (hence its chunk and indexes) untouched. *)
        let bump i state =
          let r' =
            Relation.apply_delta
              (Signed_bag.singleton (Tuple.ints [ 100 + i ]) 1)
              (Database.find state "R")
          in
          Database.add "R" r' state
        in
        let s1 = bump 1 state0 in
        ignore (Vm.publish vm ~time:1.0 ~changed:[ "R" ] s1);
        ignore (Vm.publish vm ~time:2.0 ~changed:[ "R" ] (bump 2 s1));
        let stats = Vm.chunk_stats vm in
        Alcotest.(check int) "slots" 6 stats.Vm.slots;
        (* Three R versions, one shared S chunk. *)
        Alcotest.(check int) "distinct" 4 stats.Vm.distinct;
        let chunk_s i =
          Relation.columnar (Database.find (Vm.find vm i).Vm.state "S")
        in
        Alcotest.(check bool) "S chunk shared by pointer" true
          (chunk_s 0 == chunk_s 2)) ]

let bag_v k = Helpers.bag_of (List.init k (fun i -> [ i ]))

let result_cache_tests =
  [ case "store then find at the same version hits" (fun () ->
        let c = Cache.create () in
        Cache.store c ~version:1 ~support:[ "V" ] q (bag_v 2);
        (match Cache.find c ~version:1 q with
        | Some b -> Alcotest.check Helpers.bag "cached" (bag_v 2) b
        | None -> Alcotest.fail "expected a hit");
        let s = Cache.stats c in
        Alcotest.(check int) "hits" 1 s.Cache.hits;
        Alcotest.(check int) "entries" 1 s.Cache.entries);
    case "an entry stays valid across versions that left its views alone"
      (fun () ->
        let c = Cache.create () in
        Cache.store c ~version:1 ~support:[ "V" ] q (bag_v 2);
        Cache.note_change c ~view:"W" ~version:3;
        Alcotest.(check bool) "hit at a later version" true
          (Cache.find c ~version:5 q <> None));
    case "a support-view change invalidates exactly the affected interval"
      (fun () ->
        let c = Cache.create () in
        Cache.store c ~version:1 ~support:[ "V" ] q (bag_v 2);
        Cache.note_change c ~view:"V" ~version:3;
        Alcotest.(check bool) "valid before the change" true
          (Cache.find c ~version:2 q <> None);
        Alcotest.(check bool) "invalid at the change" true
          (Cache.find c ~version:3 q = None);
        Alcotest.(check bool) "invalid after the change" true
          (Cache.find c ~version:5 q = None);
        let s = Cache.stats c in
        Alcotest.(check int) "stale counted" 2 s.Cache.stale);
    case "validity works backwards: older reads reuse newer results"
      (fun () ->
        let c = Cache.create () in
        Cache.note_change c ~view:"V" ~version:1;
        Cache.store c ~version:5 ~support:[ "V" ] q (bag_v 6);
        Alcotest.(check bool) "valid at an older version" true
          (Cache.find c ~version:2 q <> None);
        Alcotest.(check bool) "but not across the change" true
          (Cache.find c ~version:0 q = None));
    case "capacity evicts the oldest-inserted entry" (fun () ->
        let c = Cache.create ~capacity:2 () in
        let q1 = Algebra.base "A" and q2 = Algebra.base "B" in
        Cache.store c ~version:1 ~support:[ "V" ] q (bag_v 1);
        Cache.store c ~version:1 ~support:[ "A" ] q1 (bag_v 1);
        Cache.store c ~version:1 ~support:[ "B" ] q2 (bag_v 1);
        let s = Cache.stats c in
        Alcotest.(check int) "evictions" 1 s.Cache.evictions;
        Alcotest.(check int) "entries" 2 s.Cache.entries;
        Alcotest.(check bool) "oldest gone" true (Cache.find c ~version:1 q = None);
        Alcotest.(check bool) "newest kept" true
          (Cache.find c ~version:1 q2 <> None));
    case "commit advances valid entries in place, exactly" (fun () ->
        let c = Cache.create () in
        let q2 = Algebra.select (Pred.le "x" (Value.Int 1)) (Algebra.base "V") in
        Cache.store c ~version:1 ~support:[ "V" ] q (bag_v 3);
        Cache.store c ~version:1 ~support:[ "V" ] q2
          (Helpers.bag_of [ [ 0 ]; [ 1 ] ]);
        (* db 3 -> db 4 inserts one tuple into V: width 1 <= both cached
           cardinalities, so both entries refresh rather than invalidate. *)
        Cache.commit c ~version:2 ~changed:[ "V" ] ~pre:(db 3) ~post:(db 4);
        let s = Cache.stats c in
        Alcotest.(check int) "both entries refreshed" 2 s.Cache.refreshed;
        Alcotest.(check int) "no fallbacks" 0 s.Cache.refresh_fallbacks;
        (match Cache.find c ~version:2 q with
        | Some b ->
          Alcotest.check Helpers.bag "bit-for-bit the recompute" (bag_v 4) b
        | None -> Alcotest.fail "expected a refreshed hit");
        (match Cache.find c ~version:2 q2 with
        | Some b ->
          Alcotest.check Helpers.bag "selection delta filtered away"
            (Helpers.bag_of [ [ 0 ]; [ 1 ] ])
            b
        | None -> Alcotest.fail "expected a refreshed hit");
        (* The trade-off the refresh makes: the single physical entry now
           sits at version 2, so a read pinned before the commit misses. *)
        Alcotest.(check bool) "pre-commit reads now miss" true
          (Cache.find c ~version:1 q = None));
    case "refresh falls back when the delta outweighs the cached result"
      (fun () ->
        let c = Cache.create () in
        Cache.store c ~version:1 ~support:[ "V" ] q (bag_v 1);
        (* db 1 -> db 5 inserts four tuples: width 4 > |cached| = 1, so the
           entry is left to plain invalidation. *)
        Cache.commit c ~version:2 ~changed:[ "V" ] ~pre:(db 1) ~post:(db 5);
        let s = Cache.stats c in
        Alcotest.(check int) "fallback counted" 1 s.Cache.refresh_fallbacks;
        Alcotest.(check int) "nothing refreshed" 0 s.Cache.refreshed;
        Alcotest.(check bool) "entry invalidated at the new version" true
          (Cache.find c ~version:2 q = None);
        Alcotest.(check bool) "still valid at its own version" true
          (Cache.find c ~version:1 q <> None)) ]

(* Session tests run against a manager with versions 0..2 at times 0, 1, 2
   carrying 1, 2, 3 tuples. *)
let session_tests =
  [ case "Latest serves the newest version" (fun () ->
        let vm = vm_with 2 in
        let s = Session.create ~guarantee:Session.Latest vm in
        let o = Session.read s ~now:5.0 q in
        Alcotest.(check int) "version" 2 o.Session.version;
        Alcotest.check Helpers.bag "contents" (bag_v 3) o.Session.result;
        Alcotest.(check (float 1e-9)) "staleness" 3.0 o.Session.staleness;
        Alcotest.(check bool) "not clamped" false o.Session.clamped);
    case "historical reads serve the version visible at the instant"
      (fun () ->
        let vm = vm_with 2 in
        let s = Session.create ~guarantee:Session.Latest vm in
        let o = Session.read s ~now:5.0 ~as_of:1.5 q in
        Alcotest.(check int) "version" 1 o.Session.version;
        Alcotest.check Helpers.bag "contents" (bag_v 2) o.Session.result);
    case "monotonic clamps historical reads up to the session token"
      (fun () ->
        let vm = vm_with 2 in
        let fresh = Session.create ~guarantee:Session.Monotonic_reads vm in
        let o = Session.read fresh ~now:5.0 ~as_of:1.5 q in
        Alcotest.(check int) "no token yet: honest history" 1 o.Session.version;
        Alcotest.(check bool) "not clamped" false o.Session.clamped;
        let s = Session.create ~guarantee:Session.Monotonic_reads vm in
        let o1 = Session.read s ~now:5.0 q in
        Alcotest.(check int) "current read" 2 o1.Session.version;
        Alcotest.(check int) "token advanced" 2 (Session.token s);
        let o2 = Session.read s ~now:5.0 ~as_of:1.5 q in
        Alcotest.(check int) "clamped to the token" 2 o2.Session.version;
        Alcotest.(check bool) "flagged" true o2.Session.clamped);
    case "bounded staleness serves the oldest admissible version" (fun () ->
        let vm = vm_with 2 in
        let s = Session.create ~guarantee:(Session.Bounded_staleness 2.0) vm in
        let o = Session.read s ~now:2.5 q in
        Alcotest.(check int) "oldest within the bound" 1 o.Session.version;
        Alcotest.(check bool) "bound respected" true
          (o.Session.staleness <= 2.0);
        let tight = Session.create ~guarantee:(Session.Bounded_staleness 0.1) vm in
        let o = Session.read tight ~now:2.5 q in
        Alcotest.(check int) "nothing fresh enough: latest" 2 o.Session.version);
    case "reads below the pruning watermark clamp to the oldest retained"
      (fun () ->
        let vm = vm_with ~retention:(Vm.Keep_last 1) 2 in
        let s = Session.create ~guarantee:Session.Latest vm in
        let o = Session.read s ~now:5.0 ~as_of:0.5 q in
        Alcotest.(check int) "oldest we still have" 2 o.Session.version;
        Alcotest.(check bool) "flagged" true o.Session.clamped);
    case "an in-flight read's lease survives concurrent pruning" (fun () ->
        let vm = Vm.create ~retention:(Vm.Keep_last 1) (db 1) in
        let s = Session.create ~guarantee:Session.Latest vm in
        let pending = Session.start s ~now:0.5 () in
        Alcotest.(check int) "selected version 0" 0
          (Session.pending_version pending).Vm.index;
        ignore (Vm.publish vm ~time:1.0 ~changed:[ "V" ] (db 2));
        ignore (Vm.publish vm ~time:2.0 ~changed:[ "V" ] (db 3));
        Alcotest.(check int) "prune blocked by the lease" 0 (Vm.watermark vm);
        let o = Session.complete s pending ~now:2.5 q in
        Alcotest.check Helpers.bag "evaluated against the leased state"
          (bag_v 1) o.Session.result;
        Alcotest.(check int) "lease released, prune resumed" 2 (Vm.watermark vm);
        Alcotest.(check bool) "double complete" true
          (match Session.complete s pending ~now:2.5 q with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "sessions sharing a cache share results" (fun () ->
        let vm = vm_with 2 in
        let cache = Cache.create () in
        let s1 = Session.create ~cache ~guarantee:Session.Latest vm in
        let s2 = Session.create ~cache ~guarantee:Session.Latest vm in
        let o1 = Session.read s1 ~now:5.0 q in
        Alcotest.(check bool) "first read misses" false o1.Session.cache_hit;
        let o2 = Session.read s2 ~now:5.0 q in
        Alcotest.(check bool) "second read hits" true o2.Session.cache_hit;
        Alcotest.check Helpers.bag "identical results" o1.Session.result
          o2.Session.result;
        Alcotest.check Helpers.bag "and correct"
          (Query.Eval.eval_bag ~naive:true (db 3) q)
          o2.Session.result);
    Helpers.qcheck ~count:150
      "monotonic sessions never observe a smaller commit index"
      QCheck2.Gen.(int_range 0 1_000_000)
      (fun seed ->
        let rng = Sim.Rng.create seed in
        let vm = Vm.create (db 1) in
        let s = Session.create ~guarantee:Session.Monotonic_reads vm in
        let time = ref 0.0 in
        let k = ref 1 in
        let last = ref 0 in
        let ok = ref true in
        for _ = 1 to 40 do
          if Sim.Rng.bool rng then begin
            time := !time +. Sim.Rng.float rng 1.0;
            incr k;
            ignore (Vm.publish vm ~time:!time ~changed:[ "V" ] (db !k))
          end
          else begin
            let as_of =
              if Sim.Rng.bool rng then
                Some (Sim.Rng.float rng (!time +. 1.0))
              else None
            in
            let o = Session.read s ~now:(!time +. 0.1) ?as_of q in
            if o.Session.version < !last then ok := false;
            last := max !last o.Session.version
          end
        done;
        !ok) ]

(* Full-system integration: concurrent readers against a live maintenance
   pipeline. *)

let records result =
  match result.Whips.System.serving with
  | Some sv -> sv.Whips.System.reads_served
  | None -> Alcotest.fail "expected serving to be attached"

(* Every served result must equal a naive re-evaluation of its query over
   the exact state it was served from — the compiled/cached read path
   cross-checked against the reference evaluator, read by read. *)
let check_read_results result =
  List.iter
    (fun r ->
      Alcotest.check Helpers.bag "read equals naive oracle"
        (Query.Eval.eval_bag ~naive:true r.Whips.System.read_state
           r.Whips.System.read_query)
        r.Whips.System.read_result)
    (records result)

(* Served snapshots, sorted by version and deduplicated, form a
   subsequence of the commit chain; prepending ws_0 and capping with the
   final state (the checker requires histories to end at ss_f, and reads
   may have stopped before the last commits) gives the checker a
   warehouse history that must be strongly consistent whenever the
   pipeline's merge kept MVC. *)
let check_served_snapshots result =
  let sorted =
    List.sort_uniq
      (fun a b ->
        compare a.Whips.System.read_version b.Whips.System.read_version)
      (records result)
  in
  let served =
    List.filter_map
      (fun r ->
        if r.Whips.System.read_version = 0 then None
        else Some r.Whips.System.read_state)
      sorted
  in
  let max_version =
    List.fold_left
      (fun acc r -> max acc r.Whips.System.read_version)
      0 sorted
  in
  let served =
    if max_version < Warehouse.Store.commit_count result.Whips.System.store
    then served @ [ Warehouse.Store.snapshot result.Whips.System.store ]
    else served
  in
  let ws0 = Warehouse.Store.initial result.Whips.System.store in
  let verdict =
    Consistency.Checker.check
      ~views:result.Whips.System.config.Whips.System.scenario.Workload.Scenarios.views
      ~transactions:result.Whips.System.transactions
      ~source_states:(Source.Sources.states result.Whips.System.sources)
      ~warehouse_states:(ws0 :: served)
  in
  Alcotest.(check bool)
    ("served snapshots consistent: " ^ verdict.Consistency.Checker.detail)
    true
    (Consistency.Checker.at_least Consistency.Checker.Strong verdict)

let system_tests =
  [ case "concurrent readers over a live run match the naive oracle"
      (fun () ->
        let cfg =
          { (Whips.System.default Workload.Scenarios.bank) with
            arrival = Whips.System.Poisson 40.0;
            reads = Some Whips.System.default_reads;
            seed = 11 }
        in
        let result = Whips.System.run cfg in
        Alcotest.(check bool) "drained" false result.Whips.System.stuck;
        Alcotest.(check int) "all reads served" 100
          (List.length (records result));
        Alcotest.(check int) "metrics agree" 100
          (Atomic.get result.Whips.System.metrics.Whips.Metrics.reads);
        check_read_results result;
        check_served_snapshots result);
    case "SPA with channel faults serves only consistent snapshots"
      (fun () ->
        let cfg =
          { (Whips.System.default Workload.Scenarios.paper_views) with
            merge_kind = Whips.System.Force_spa;
            arrival = Whips.System.Poisson 30.0;
            fault_plan =
              Workload.Fault_plan.random ~drop:0.1 ~duplicate:0.05
                ~delay:0.05 "*";
            reliability = Whips.System.Acked Sim.Reliable.default_params;
            reads =
              Some { Whips.System.default_reads with n_reads = 60 };
            seed = 7 }
        in
        let result = Whips.System.run cfg in
        Alcotest.(check bool) "drained" false result.Whips.System.stuck;
        Alcotest.(check int) "all reads served" 60
          (List.length (records result));
        check_read_results result;
        check_served_snapshots result);
    case "PA with channel faults serves only consistent snapshots"
      (fun () ->
        let cfg =
          { (Whips.System.default Workload.Scenarios.paper_views) with
            merge_kind = Whips.System.Force_pa;
            arrival = Whips.System.Poisson 30.0;
            fault_plan =
              Workload.Fault_plan.random ~drop:0.1 ~duplicate:0.05
                ~delay:0.05 "*";
            reliability = Whips.System.Acked Sim.Reliable.default_params;
            reads =
              Some { Whips.System.default_reads with n_reads = 60 };
            seed = 13 }
        in
        let result = Whips.System.run cfg in
        Alcotest.(check bool) "drained" false result.Whips.System.stuck;
        check_read_results result;
        check_served_snapshots result);
    case "the result cache changes nothing a client can observe" (fun () ->
        let base =
          { (Whips.System.default Workload.Scenarios.bank) with
            arrival = Whips.System.Poisson 40.0;
            (* Value-transparency check: pin the hit service time to the
               miss service time so cache-on and cache-off runs serve at
               identical instants (and thus versions). The cheaper-hit
               latency model is exercised separately below. *)
            latencies =
              { Whips.System.default_latencies with
                read_hit = Whips.System.default_latencies.Whips.System.read };
            seed = 19 }
        in
        let with_cache =
          Whips.System.run
            { base with
              reads =
                Some { Whips.System.default_reads with read_cache = true } }
        in
        let without =
          Whips.System.run
            { base with
              reads =
                Some { Whips.System.default_reads with read_cache = false } }
        in
        let a = records with_cache and b = records without in
        Alcotest.(check int) "same read count" (List.length a) (List.length b);
        List.iter2
          (fun x y ->
            Alcotest.(check int) "same version"
              x.Whips.System.read_version y.Whips.System.read_version;
            Alcotest.check Helpers.bag "same result"
              x.Whips.System.read_result y.Whips.System.read_result)
          a b;
        Alcotest.(check bool) "cache was exercised" true
          ((Atomic.get with_cache.Whips.System.metrics.Whips.Metrics.cache_hits) > 0);
        Alcotest.(check int) "no cache counters when disabled" 0
          ((Atomic.get without.Whips.System.metrics.Whips.Metrics.cache_hits)
          + (Atomic.get without.Whips.System.metrics.Whips.Metrics.cache_misses)));
    case "incremental refresh changes nothing a client can observe"
      (fun () ->
        (* Same value-transparency scheme as the cache test above: pinned
           hit latency makes refresh-on and refresh-off runs serve at
           identical instants and versions, so every divergence a
           refreshed entry could introduce would surface as a result
           mismatch. *)
        let base =
          { (Whips.System.default Workload.Scenarios.bank) with
            arrival = Whips.System.Poisson 40.0;
            latencies =
              { Whips.System.default_latencies with
                read_hit = Whips.System.default_latencies.Whips.System.read };
            seed = 29 }
        in
        let refresh =
          Whips.System.run
            { base with
              reads =
                Some { Whips.System.default_reads with cache_refresh = true } }
        in
        let invalidate =
          Whips.System.run
            { base with
              reads =
                Some { Whips.System.default_reads with cache_refresh = false } }
        in
        let a = records refresh and b = records invalidate in
        Alcotest.(check int) "same read count" (List.length a) (List.length b);
        List.iter2
          (fun x y ->
            Alcotest.(check int) "same version"
              x.Whips.System.read_version y.Whips.System.read_version;
            Alcotest.check Helpers.bag "same result"
              x.Whips.System.read_result y.Whips.System.read_result)
          a b;
        check_read_results refresh;
        let rm = refresh.Whips.System.metrics in
        Alcotest.(check bool) "refresh was exercised" true
          (Atomic.get rm.Whips.Metrics.cache_refreshes > 0);
        let im = invalidate.Whips.System.metrics in
        Alcotest.(check int) "no refreshes when disabled" 0
          (Atomic.get im.Whips.Metrics.cache_refreshes
          + Atomic.get im.Whips.Metrics.cache_refresh_fallbacks));
    case "refresh matches invalidation under SPA with channel faults"
      (fun () ->
        let base =
          { (Whips.System.default Workload.Scenarios.paper_views) with
            merge_kind = Whips.System.Force_spa;
            arrival = Whips.System.Poisson 30.0;
            latencies =
              { Whips.System.default_latencies with
                read_hit = Whips.System.default_latencies.Whips.System.read };
            fault_plan =
              Workload.Fault_plan.random ~drop:0.1 ~duplicate:0.05
                ~delay:0.05 "*";
            reliability = Whips.System.Acked Sim.Reliable.default_params;
            seed = 7 }
        in
        let reads refresh =
          Some
            { Whips.System.default_reads with n_reads = 60; cache_refresh = refresh }
        in
        let on = Whips.System.run { base with reads = reads true } in
        let off = Whips.System.run { base with reads = reads false } in
        Alcotest.(check bool) "drained" false on.Whips.System.stuck;
        let a = records on and b = records off in
        Alcotest.(check int) "same read count" (List.length a) (List.length b);
        List.iter2
          (fun x y ->
            Alcotest.(check int) "same version"
              x.Whips.System.read_version y.Whips.System.read_version;
            Alcotest.check Helpers.bag "same result"
              x.Whips.System.read_result y.Whips.System.read_result)
          a b;
        check_read_results on;
        check_served_snapshots on;
        Alcotest.(check bool) "refresh was exercised under faults" true
          (Atomic.get on.Whips.System.metrics.Whips.Metrics.cache_refreshes > 0));
    case "refresh matches invalidation under PA with channel faults"
      (fun () ->
        let base =
          { (Whips.System.default Workload.Scenarios.paper_views) with
            merge_kind = Whips.System.Force_pa;
            arrival = Whips.System.Poisson 30.0;
            latencies =
              { Whips.System.default_latencies with
                read_hit = Whips.System.default_latencies.Whips.System.read };
            fault_plan =
              Workload.Fault_plan.random ~drop:0.1 ~duplicate:0.05
                ~delay:0.05 "*";
            reliability = Whips.System.Acked Sim.Reliable.default_params;
            seed = 13 }
        in
        let reads refresh =
          Some
            { Whips.System.default_reads with n_reads = 60; cache_refresh = refresh }
        in
        let on = Whips.System.run { base with reads = reads true } in
        let off = Whips.System.run { base with reads = reads false } in
        let a = records on and b = records off in
        Alcotest.(check int) "same read count" (List.length a) (List.length b);
        List.iter2
          (fun x y ->
            Alcotest.(check int) "same version"
              x.Whips.System.read_version y.Whips.System.read_version;
            Alcotest.check Helpers.bag "same result"
              x.Whips.System.read_result y.Whips.System.read_result)
          a b;
        check_read_results on;
        check_served_snapshots on);
    case "serving metrics are populated" (fun () ->
        let cfg =
          { (Whips.System.default Workload.Scenarios.bank) with
            arrival = Whips.System.Poisson 40.0;
            reads = Some Whips.System.default_reads;
            seed = 23 }
        in
        let result = Whips.System.run cfg in
        let m = result.Whips.System.metrics in
        Alcotest.(check int) "latency samples" (Atomic.get m.Whips.Metrics.reads)
          (Sim.Stats.Summary.count m.Whips.Metrics.read_latency);
        Alcotest.(check int) "staleness samples" (Atomic.get m.Whips.Metrics.reads)
          (Sim.Stats.Summary.count m.Whips.Metrics.served_staleness);
        Alcotest.(check bool) "hit ratio in range" true
          (let r = Whips.Metrics.cache_hit_ratio m in
           r >= 0.0 && r <= 1.0);
        Alcotest.(check bool) "read throughput positive" true
          (Whips.Metrics.read_throughput m > 0.0)) ]

let tests =
  version_manager_tests @ result_cache_tests @ session_tests @ system_tests
