open Query

let case = Helpers.case

let v name rels = View.make name (Algebra.join_all (List.map Algebra.base rels))

let names groups = List.map (List.map View.name) groups

let tests =
  [ case "disjoint views split into singleton groups" (fun () ->
        let groups = Mvc.Partition.groups [ v "A" [ "R" ]; v "B" [ "S" ] ] in
        Alcotest.(check (list (list string))) "two groups" [ [ "A" ]; [ "B" ] ]
          (names groups));
    case "shared relation merges groups" (fun () ->
        let groups =
          Mvc.Partition.groups [ v "A" [ "R"; "S" ]; v "B" [ "S"; "T" ] ]
        in
        Alcotest.(check (list (list string))) "one group" [ [ "A"; "B" ] ]
          (names groups));
    case "transitive sharing" (fun () ->
        let groups =
          Mvc.Partition.groups
            [ v "A" [ "R" ]; v "B" [ "R"; "S" ]; v "C" [ "S" ]; v "D" [ "Z" ] ]
        in
        Alcotest.(check (list (list string))) "ABC together, D alone"
          [ [ "A"; "B"; "C" ]; [ "D" ] ]
          (names groups));
    case "figure 3 partitioning" (fun () ->
        (* VM1: V1 = R |><| S, VM2: V2 = S |><| T, VM3: V3 = Q *)
        let groups =
          Mvc.Partition.groups
            [ v "V1" [ "R"; "S" ]; v "V2" [ "S"; "T" ]; v "V3" [ "Q" ] ]
        in
        Alcotest.(check (list (list string))) "MP1 {V1,V2}, MP2 {V3}"
          [ [ "V1"; "V2" ]; [ "V3" ] ]
          (names groups));
    case "groups never share a base relation" (fun () ->
        let views =
          [ v "A" [ "R"; "S" ]; v "B" [ "T" ]; v "C" [ "S" ]; v "D" [ "U"; "T" ] ]
        in
        let groups = Mvc.Partition.groups views in
        let rels_of_group g =
          List.concat_map View.base_relations g |> List.sort_uniq compare
        in
        List.iteri
          (fun i gi ->
            List.iteri
              (fun j gj ->
                if i < j then
                  List.iter
                    (fun r ->
                      Alcotest.(check bool)
                        (Printf.sprintf "relation %s not shared" r)
                        false
                        (List.mem r (rels_of_group gj)))
                    (rels_of_group gi))
              groups)
          groups);
    case "coarsen respects max_groups" (fun () ->
        let fine = [ [ v "A" [ "R" ] ]; [ v "B" [ "S" ] ]; [ v "C" [ "T" ] ] ] in
        let coarse = Mvc.Partition.coarsen ~max_groups:2 fine in
        Alcotest.(check int) "2 groups" 2 (List.length coarse);
        let total = List.length (List.concat coarse) in
        Alcotest.(check int) "all views kept" 3 total);
    case "coarsen below 1 rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (match Mvc.Partition.coarsen ~max_groups:0 [] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "coarsen is identity when within the budget" (fun () ->
        let fine = [ [ v "A" [ "R" ] ]; [ v "B" [ "S" ] ] ] in
        Alcotest.(check int) "unchanged" 2
          (List.length (Mvc.Partition.coarsen ~max_groups:5 fine)));
    case "coarsen with affinity never straddles a shard" (fun () ->
        (* Six singleton fine groups, alternating shard affinity, packed
           hard (max_groups = 2): the budget must stretch to one group
           per shard class and no output group may mix shards. *)
        let shard_of view =
          if String.length (View.name view) > 1 then 1 else 0
        in
        let fine =
          [ [ v "A" [ "R" ] ]; [ v "BB" [ "S" ] ]; [ v "C" [ "T" ] ];
            [ v "DD" [ "U" ] ]; [ v "E" [ "W" ] ]; [ v "FF" [ "X" ] ] ]
        in
        let coarse =
          Mvc.Partition.coarsen ~affinity:shard_of ~max_groups:2 fine
        in
        Alcotest.(check bool) "within stretched budget" true
          (List.length coarse >= 2 && List.length coarse <= 2);
        Alcotest.(check int) "all views kept" 6
          (List.length (List.concat coarse));
        List.iter
          (fun group ->
            let shards =
              List.map shard_of group |> List.sort_uniq compare
            in
            Alcotest.(check int) "one shard per group" 1 (List.length shards))
          coarse);
    case "affinity grants spare bins to the densest shard" (fun () ->
        let shard_of view = if View.name view < "M" then 0 else 1 in
        let fine =
          [ [ v "A" [ "R" ] ]; [ v "B" [ "S" ] ]; [ v "C" [ "T" ] ];
            [ v "D" [ "U" ] ]; [ v "Z" [ "X" ] ] ]
        in
        let coarse =
          Mvc.Partition.coarsen ~affinity:shard_of ~max_groups:3 fine
        in
        (* Shard 0 holds 4 views, shard 1 one: the spare bin goes to
           shard 0, so it ends with two groups and shard 1 with one. *)
        let by_shard s =
          List.filter (fun g -> List.exists (fun x -> shard_of x = s) g) coarse
        in
        Alcotest.(check int) "3 groups" 3 (List.length coarse);
        Alcotest.(check int) "shard 0 split in two" 2
          (List.length (by_shard 0));
        Alcotest.(check int) "shard 1 kept whole" 1 (List.length (by_shard 1));
        List.iter
          (fun group ->
            Alcotest.(check int) "no straddle" 1
              (List.length (List.sort_uniq compare (List.map shard_of group))))
          coarse);
    case "affinity rejects a fine group mixing shards" (fun () ->
        let fine = [ [ v "A" [ "R" ]; v "BB" [ "R" ] ] ] in
        Alcotest.(check bool) "raises" true
          (match
             Mvc.Partition.coarsen
               ~affinity:(fun view ->
                 String.length (View.name view))
               ~max_groups:4 fine
           with
          | exception Invalid_argument _ -> true
          | _ -> false));
    case "route finds owning groups" (fun () ->
        let groups = [ [ v "A" [ "R" ] ]; [ v "B" [ "S" ]; v "C" [ "S" ] ] ] in
        Alcotest.(check (list int)) "B in group 1" [ 1 ]
          (Mvc.Partition.route groups [ "B" ]);
        Alcotest.(check (list int)) "A and C span both" [ 0; 1 ]
          (Mvc.Partition.route groups [ "A"; "C" ]);
        Alcotest.(check (list int)) "unknown nowhere" []
          (Mvc.Partition.route groups [ "Z" ])) ]
