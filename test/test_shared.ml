(* The shared-plan delta engine. Four layers of evidence:

   - Canon: the normal form is schema- and semantics-preserving (qcheck
     against the naive evaluator), idempotent, and actually unifies what
     it promises — commuted joins, reordered conjuncts and the
     optimizer's selection pushdown all intern to physically shared
     subterms;
   - Bag_index.apply_signed: an index migrated in place equals a fresh
     index of the applied bag (the mechanism long-lived intermediates
     ride through updates on);
   - the engine oracle: over random databases, view sets with forced
     subplan overlap and random transaction chains, per-view deltas
     from [txn_pass] and from demand-driven [txn_delta] (txn-major
     rotated and view-major laggard orders) equal independent per-view
     [Query.Delta.eval] runs of the naive reference rules, and applying
     them step by step reproduces the naive recompute of every view;
   - pinned paper traces: full-system runs of the paper scenarios are
     byte-identical with sharing on and off, on both runtimes. *)

open Relational

let case = Helpers.case

let schemas r =
  Helpers.Delta_domain.schema_of
    (int_of_string (String.sub r 1 (String.length r - 1)))

let canon = Query.Canon.canonical ~schemas

let normalize = Query.Canon.normalize ~schemas

let rel k = Query.Algebra.base (Printf.sprintf "R%d" k)

(* ---- the canonical normal form ---- *)

let core_of = function
  | Query.Algebra.Project (_, inner) -> inner
  | e -> e

let canon_tests =
  [ case "commuted joins intern to one physical core" (fun () ->
        let a = canon (Query.Algebra.join (rel 0) (rel 1)) in
        let b = canon (Query.Algebra.join (rel 1) (rel 0)) in
        (match b with
        | Query.Algebra.Project (names, _) ->
          Alcotest.(check (list string))
            "bridging permutation keeps the commuted order"
            [ "a1"; "a2"; "a0" ] names
        | _ -> Alcotest.fail "expected a bridging permutation Project");
        Alcotest.(check bool) "one shared core" true (core_of b == a));
    case "pushed selections and commuted operands unify" (fun () ->
        (* sel_p(R0) |><| R1 (the optimizer's pushed form) and
           sel_p(R1 |><| R0) (the written form, commuted) are the same
           computation; both must canonicalize onto one physical
           Select-over-Join core. *)
        let p = Query.Pred.le "a0" (Value.Int 2) in
        let a =
          canon (Query.Algebra.join (Query.Algebra.select p (rel 0)) (rel 1))
        in
        let b =
          canon (Query.Algebra.select p (Query.Algebra.join (rel 1) (rel 0)))
        in
        Alcotest.(check bool) "one shared core" true (core_of b == a));
    case "the optimizer's selection pushdown cancels out" (fun () ->
        let e =
          Query.Algebra.select
            (Query.Pred.le "a0" (Value.Int 2))
            (Query.Algebra.join (rel 0) (rel 1))
        in
        let opt = Query.Optimize.optimize ~schemas e in
        Alcotest.(check bool) "the optimizer rewrote" true (opt <> e);
        Alcotest.(check bool) "same canonical form" true (canon opt == canon e));
    case "reordered conjuncts unify" (fun () ->
        let p = Query.Pred.le "a0" (Value.Int 2)
        and q = Query.Pred.le "a1" (Value.Int 3) in
        let sel pr = Query.Algebra.select pr (Query.Algebra.join (rel 0) (rel 1)) in
        Alcotest.(check bool) "And is order-insensitive" true
          (canon (sel (Query.Pred.And (p, q)))
          == canon (sel (Query.Pred.And (q, p)))));
    Helpers.qcheck ~count:300
      "normalize preserves schema and semantics; idempotent"
      QCheck2.Gen.(
        pair Helpers.Delta_domain.expr_gen Helpers.Delta_domain.db_gen)
      (fun (e, db) ->
        let n = normalize e in
        Schema.equal
          (Query.Algebra.schema_of schemas e)
          (Query.Algebra.schema_of schemas n)
        && Bag.equal
             (Query.Eval.eval_bag ~naive:true db e)
             (Query.Eval.eval_bag ~naive:true db n)
        && normalize n = n) ]

(* ---- long-lived index migration ---- *)

let dump_index idx =
  Bag_index.groups idx
  |> List.map (fun (k, es) ->
         ( k,
           List.sort
             (fun (t1, c1) (t2, c2) ->
               match Tuple.compare t1 t2 with 0 -> compare c1 c2 | n -> n)
             es ))
  |> List.sort (fun (k1, _) (k2, _) -> Tuple.compare k1 k2)

let index_tests =
  [ Helpers.qcheck ~count:200 "apply_signed == reindex of the applied bag"
      QCheck2.Gen.(
        pair
          (Helpers.Gen.small_bag ~arity:2 ~range:4)
          (Helpers.Gen.small_bag ~arity:2 ~range:4))
      (fun (before, after) ->
        (* diff_of_bags applies exactly, the precondition apply_signed
           documents. *)
        let d = Signed_bag.diff_of_bags ~before ~after in
        let idx = Bag_index.of_bag ~key_pos:[| 0 |] before in
        Bag_index.apply_signed idx d;
        dump_index idx = dump_index (Bag_index.of_bag ~key_pos:[| 0 |] after));
    case "apply_signed drops emptied keys" (fun () ->
        let b = Helpers.bag_of [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ] ] in
        let idx = Bag_index.of_bag ~key_pos:[| 0 |] b in
        Bag_index.apply_signed idx
          (Signed_bag.of_list
             [ (Tuple.ints [ 0; 1 ], -1); (Tuple.ints [ 0; 2 ], -1) ]);
        Alcotest.(check int) "one key left" 1 (Bag_index.n_keys idx);
        Alcotest.(check (list (pair Helpers.tuple int)))
          "emptied group finds nothing" []
          (Bag_index.find idx (Tuple.ints [ 0 ]))) ]

(* ---- the engine oracle (qcheck) ---- *)

(* Five views: two arbitrary expressions plus a trio built around one
   join — selected, selected-and-commuted, and raw — so every generated
   case has forced subplan overlap (the trio's canonical forms meet on
   Join(R0, R1), giving the engine at least one shared node). *)
let view_set_gen =
  QCheck2.Gen.(
    let pred_on ks =
      map2
        (fun k v -> Query.Pred.le (Printf.sprintf "a%d" k) (Value.Int v))
        (oneofl ks) (int_range 0 3)
    in
    Helpers.Delta_domain.expr_gen >>= fun e1 ->
    Helpers.Delta_domain.expr_gen >>= fun e2 ->
    pred_on [ 0; 1; 2 ] >>= fun p ->
    pred_on [ 0; 1; 2 ] >>= fun q ->
    return
      [ e1;
        e2;
        Query.Algebra.select p (Query.Algebra.join (rel 0) (rel 1));
        Query.Algebra.select q (Query.Algebra.join (rel 1) (rel 0));
        Query.Algebra.join (rel 0) (rel 1) ])

(* A chain of transactions with strictly increasing ids whose deletes and
   modifies always target live tuples (threading the evolving db, like
   [Delta_domain.changes_gen] does within one transaction). *)
let txns_gen db =
  QCheck2.Gen.(
    int_range 1 4 >>= fun n ->
    let rec go db i acc =
      if i > n then return (List.rev acc)
      else
        Helpers.Delta_domain.changes_gen db >>= fun updates ->
        let txn = Update.Transaction.make ~id:i ~source:"s0" updates in
        go (Database.apply_transaction db txn) (i + 1) (txn :: acc)
    in
    go db 1 [])

let scenario_gen =
  QCheck2.Gen.(
    Helpers.Delta_domain.db_gen >>= fun db ->
    view_set_gen >>= fun defs ->
    txns_gen db >>= fun txns -> return (db, defs, txns))

let make_views defs =
  List.mapi (fun i d -> Query.View.make (Printf.sprintf "V%d" i) d) defs

let naive_delta ~pre txn (v : Query.View.t) =
  Query.Delta.eval ~naive:true ~pre
    (Query.Delta.of_transaction txn)
    v.Query.View.def

(* txn_pass: one topological pass per transaction, every relevant view's
   delta read off the shared DAG, checked against independent naive
   per-view deltas AND against the naive recompute of the maintained
   view contents at the end of the chain. *)
let check_txn_pass (db, defs, txns) =
  let views = make_views defs in
  let eng = Shared.Engine.create ~schemas ~initial:db views in
  let ok = ref (Shared.Engine.node_count eng >= 1) in
  let cur = ref db in
  let mat =
    ref
      (List.map
         (fun (v : Query.View.t) ->
           (v.Query.View.name, Query.Eval.eval_bag ~naive:true db v.Query.View.def))
         views)
  in
  List.iter
    (fun txn ->
      let deltas = Shared.Engine.txn_pass eng ~pre:!cur txn in
      List.iter
        (fun (v : Query.View.t) ->
          let oracle = naive_delta ~pre:!cur txn v in
          let got =
            Option.value
              (List.assoc_opt v.Query.View.name deltas)
              ~default:Signed_bag.zero
          in
          if not (Signed_bag.equal got oracle) then ok := false)
        views;
      mat :=
        List.map
          (fun (n, b) ->
            match List.assoc_opt n deltas with
            | Some d -> (n, Signed_bag.apply d b)
            | None -> (n, b))
          !mat;
      cur := Database.apply_transaction !cur txn)
    txns;
  List.iter
    (fun (v : Query.View.t) ->
      if
        not
          (Bag.equal
             (List.assoc v.Query.View.name !mat)
             (Query.Eval.eval_bag ~naive:true !cur v.Query.View.def))
      then ok := false)
    views;
  !ok

(* txn_delta: the pipelined runtime's demand-driven entry, under the two
   adversarial arrival orders — txn-major with a rotated view order (so
   every view is sometimes the miss that computes a node and sometimes a
   memo hit) and view-major (one view drains the whole chain before the
   next starts, exercising versioned intermediates, deferred advance and
   laggard index builds). *)
let check_txn_delta (db, defs, txns) =
  let views = make_views defs in
  let states = Array.make (List.length txns + 1) db in
  List.iteri
    (fun i txn -> states.(i + 1) <- Database.apply_transaction states.(i) txn)
    txns;
  let ok = ref true in
  let demand eng i txn (v : Query.View.t) =
    let d =
      Shared.Engine.txn_delta eng ~view:v.Query.View.name ~pre:states.(i) txn
    in
    if not (Signed_bag.equal d (naive_delta ~pre:states.(i) txn v)) then
      ok := false
  in
  let eng1 = Shared.Engine.create ~schemas ~initial:db views in
  List.iteri
    (fun i txn ->
      List.iteri
        (fun j _ ->
          demand eng1 i txn (List.nth views ((i + j) mod List.length views)))
        views)
    txns;
  let eng2 = Shared.Engine.create ~schemas ~initial:db views in
  List.iter
    (fun v -> List.iteri (fun i txn -> demand eng2 i txn v) txns)
    views;
  !ok

let oracle_tests =
  [ Helpers.qcheck ~count:500
      "txn_pass deltas == independent naive per-view deltas" scenario_gen
      check_txn_pass;
    Helpers.qcheck ~count:150
      "demand-driven txn_delta matches the oracle in adversarial orders"
      scenario_gen check_txn_delta;
    case "one miss then memo hits per (node, transaction)" (fun () ->
        let db =
          Database.of_list
            [ ("R0", Helpers.rel (schemas "R0") [ [ 0; 1 ]; [ 1; 2 ] ]);
              ("R1", Helpers.rel (schemas "R1") [ [ 1; 5 ]; [ 2; 6 ] ]);
              ("R2", Helpers.rel (schemas "R2") [ [ 5; 0 ] ]) ]
        in
        let j = Query.Algebra.join (rel 0) (rel 1) in
        let views =
          make_views
            [ Query.Algebra.select (Query.Pred.le "a0" (Value.Int 3)) j;
              Query.Algebra.select
                (Query.Pred.le "a2" (Value.Int 9))
                (Query.Algebra.join (rel 1) (rel 0));
              j ]
        in
        let eng = Shared.Engine.create ~schemas ~initial:db views in
        Alcotest.(check int) "one shared node" 1 (Shared.Engine.node_count eng);
        let txn =
          Update.Transaction.make ~id:1 ~source:"s0"
            [ Update.insert "R0" (Tuple.ints [ 1; 1 ]) ]
        in
        let deltas = Shared.Engine.txn_pass eng ~pre:db txn in
        List.iter
          (fun (v : Query.View.t) ->
            Alcotest.check Helpers.signed_bag
              (v.Query.View.name ^ " delta")
              (naive_delta ~pre:db txn v)
              (Option.value
                 (List.assoc_opt v.Query.View.name deltas)
                 ~default:Signed_bag.zero))
          views;
        let s = Shared.Engine.stats eng in
        Alcotest.(check int) "the node computed once" 1 s.Shared.Engine.misses;
        Alcotest.(check int) "served to all three views from the memo" 3
          s.Shared.Engine.hits;
        Alcotest.(check bool) "maintenance rows counted" true
          (s.Shared.Engine.rows_maintained > 0)) ]

(* ---- pinned paper traces ---- *)

(* Everything externally visible about a run: commit/action counts, the
   final instant, the whole warehouse state sequence (the VUT evolution
   of Examples 2-5 when the scenario is [paper_views]), the full event
   timeline, the served-read log and the oracle verdict. Sharing must
   change none of it. *)
let trace (r : Whips.System.result) =
  let views =
    r.Whips.System.config.Whips.System.scenario.Workload.Scenarios.views
  in
  let dump_state db =
    List.map
      (fun v ->
        Bag.to_list
          (Relation.contents (Database.find db (Query.View.name v))))
      views
  in
  let m = r.Whips.System.metrics in
  let reads =
    match r.Whips.System.serving with
    | None -> []
    | Some s ->
      List.map
        (fun rr ->
          ( rr.Whips.System.read_session,
            rr.Whips.System.read_version,
            rr.Whips.System.read_served,
            Bag.to_list rr.Whips.System.read_result ))
        s.Whips.System.reads_served
  in
  ( ( Atomic.get m.Whips.Metrics.commits,
      Atomic.get m.Whips.Metrics.actions_applied,
      m.Whips.Metrics.completed_at ),
    List.map dump_state (Warehouse.Store.states r.Whips.System.store),
    r.Whips.System.timeline,
    reads,
    Whips.System.verdict r )

let run_scen scen ~merge_kind ~shared =
  Whips.System.run
    { (Whips.System.default scen) with
      merge_kind;
      arrival = Whips.System.Uniform 0.02;
      reads = Some Whips.System.default_reads;
      record_timeline = true;
      shared_plans = shared;
      seed = 5 }

let pinned_case name scen ~merge_kind ~expect_sharing =
  case name (fun () ->
      let off = run_scen scen ~merge_kind ~shared:false in
      let on = run_scen scen ~merge_kind ~shared:true in
      Alcotest.(check bool) "byte-identical trace" true (trace on = trace off);
      if expect_sharing then begin
        let m = on.Whips.System.metrics in
        Alcotest.(check bool) "the engine was exercised" true
          (Atomic.get m.Whips.Metrics.shared_hits
           + Atomic.get m.Whips.Metrics.shared_misses
          > 0);
        let off_m = off.Whips.System.metrics in
        Alcotest.(check int) "no engine without the flag" 0
          (Atomic.get off_m.Whips.Metrics.shared_hits
          + Atomic.get off_m.Whips.Metrics.shared_misses)
      end)

let paper_tests =
  [ pinned_case "example1 is byte-identical under sharing (sequential)"
      Workload.Scenarios.example1 ~merge_kind:Whips.System.Sequential
      ~expect_sharing:false;
    pinned_case "paper_views VUT evolution is byte-identical (sequential)"
      Workload.Scenarios.paper_views ~merge_kind:Whips.System.Sequential
      ~expect_sharing:false;
    pinned_case "paper_views_q VUT evolution is byte-identical (sequential)"
      Workload.Scenarios.paper_views_q ~merge_kind:Whips.System.Sequential
      ~expect_sharing:false;
    pinned_case "auxiliary shares its sub-view joins (sequential)"
      Workload.Scenarios.auxiliary ~merge_kind:Whips.System.Sequential
      ~expect_sharing:true;
    pinned_case "paper_views is byte-identical under sharing (pipelined)"
      Workload.Scenarios.paper_views ~merge_kind:Whips.System.Auto
      ~expect_sharing:false;
    pinned_case "auxiliary shares its sub-view joins (pipelined)"
      Workload.Scenarios.auxiliary ~merge_kind:Whips.System.Auto
      ~expect_sharing:true ]

let tests = canon_tests @ index_tests @ oracle_tests @ paper_tests
