open Relational
open Query

let case = Helpers.case

(* Build a store with a commit history at known times. *)
let store_with_history () =
  let s =
    Warehouse.Store.create
      [ ("V", Helpers.rel (Helpers.int_schema [ "x" ]) [ [ 1 ] ]) ]
  in
  let wt time tuple =
    Warehouse.Store.apply s ~time
      (Warehouse.Wt.make ~rows:[ 1 ]
         [ Action_list.delta ~view:"V" ~state:1
             (Signed_bag.singleton (Helpers.ints [ tuple ]) 1) ])
  in
  wt 1.0 2;
  wt 3.0 3;
  s

let reader_tests =
  [ case "as_of before any commit is ws_0" (fun () ->
        let s = store_with_history () in
        Alcotest.(check int) "initial" 1
          (Relation.cardinal (Database.find (Warehouse.Store.as_of s 0.5) "V")));
    case "as_of between commits picks the earlier" (fun () ->
        let s = store_with_history () in
        Alcotest.(check int) "after first" 2
          (Relation.cardinal (Database.find (Warehouse.Store.as_of s 2.0) "V")));
    case "as_of at exactly a commit time includes it" (fun () ->
        let s = store_with_history () in
        Alcotest.(check int) "inclusive" 2
          (Relation.cardinal (Database.find (Warehouse.Store.as_of s 1.0) "V")));
    case "as_of after the last commit is current" (fun () ->
        let s = store_with_history () in
        Alcotest.(check int) "current" 3
          (Relation.cardinal (Database.find (Warehouse.Store.as_of s 99.0) "V")));
    case "reader queries views as relations" (fun () ->
        let s = store_with_history () in
        let out =
          Warehouse.Reader.query s
            Algebra.(select (Pred.ge "x" (Value.Int 2)) (base "V"))
        in
        Alcotest.check Helpers.bag "filtered"
          (Helpers.bag_of [ [ 2 ]; [ 3 ] ])
          (Relation.contents out));
    case "reader query_as_of sees the historical state" (fun () ->
        let s = store_with_history () in
        let out = Warehouse.Reader.query_as_of s ~time:1.5 Algebra.(base "V") in
        Alcotest.check Helpers.bag "two tuples"
          (Helpers.bag_of [ [ 1 ]; [ 2 ] ])
          (Relation.contents out));
    case "reader can join two views" (fun () ->
        let s =
          Warehouse.Store.create
            [ ("A", Helpers.rel (Helpers.int_schema [ "k"; "v" ]) [ [ 1; 10 ] ]);
              ("B", Helpers.rel (Helpers.int_schema [ "k"; "w" ]) [ [ 1; 20 ] ]) ]
        in
        let out = Warehouse.Reader.query s Algebra.(join (base "A") (base "B")) in
        Alcotest.check Helpers.bag "joined"
          (Helpers.bag_of [ [ 1; 10; 20 ] ])
          (Relation.contents out));
    case "unknown view raises" (fun () ->
        let s = store_with_history () in
        Alcotest.check_raises "unknown" (Database.Unknown_relation "Z")
          (fun () -> ignore (Warehouse.Reader.query s (Algebra.base "Z"))));
    case "query_as_of below the retention watermark raises Pruned" (fun () ->
        let s =
          Warehouse.Store.create
            ~retention:(Warehouse.Store.Keep_last 1)
            [ ("V", Helpers.rel (Helpers.int_schema [ "x" ]) []) ]
        in
        List.iter
          (fun (time, t) ->
            Warehouse.Store.apply s ~time
              (Warehouse.Wt.make ~rows:[ t ]
                 [ Action_list.delta ~view:"V" ~state:t
                     (Signed_bag.singleton (Helpers.ints [ t ]) 1) ]))
          [ (1.0, 1); (3.0, 2) ];
        Alcotest.(check bool) "pruned" true
          (match Warehouse.Reader.query_as_of s ~time:1.5 (Algebra.base "V") with
          | exception Warehouse.Store.Pruned 1.5 -> true
          | _ -> false);
        (* The retained window is still readable. *)
        Alcotest.(check int) "window" 2
          (Relation.cardinal
             (Warehouse.Reader.query_as_of s ~time:3.0 (Algebra.base "V"))));
    Helpers.qcheck ~count:150 "compiled read path agrees with the naive oracle"
      QCheck2.Gen.(pair Helpers.Delta_domain.db_gen Helpers.Delta_domain.expr_gen)
      (fun (database, expr) ->
        (* Reader.query runs compile_memo + the compiled kernel; the naive
           evaluator is the reference semantics. *)
        let s =
          Warehouse.Store.create
            (List.map
               (fun n -> (n, Database.find database n))
               (Database.names database))
        in
        Bag.equal
          (Eval.eval_bag ~naive:true database expr)
          (Relation.contents (Warehouse.Reader.query s expr))) ]

let system_tests =
  [ case "customer inquiry over a live run reads consistent data" (fun () ->
        let result =
          Whips.System.run
            { (Whips.System.default Workload.Scenarios.bank) with seed = 5 }
        in
        (* Join the two warehouse views like an inquiry application. *)
        let out =
          Warehouse.Reader.query result.store
            Algebra.(join (base "checking_copy") (base "linked"))
        in
        (* Every checking_copy row joins its linked row: cardinalities
           match when the views agree. *)
        Alcotest.(check int) "all customers join" 5 (Relation.cardinal out));
    case "optimized view definitions yield the same run" (fun () ->
        let scen = Workload.Scenarios.retail_star in
        let base = { (Whips.System.default scen) with seed = 21 } in
        let plain = Whips.System.run base in
        let optimized = Whips.System.run { base with optimize_views = true } in
        let v = Whips.System.verdict optimized in
        Alcotest.(check bool) "complete" true v.complete;
        List.iter
          (fun view ->
            let name = Query.View.name view in
            Alcotest.check Helpers.bag (name ^ " equal")
              (Whips.System.view_contents plain name)
              (Whips.System.view_contents optimized name))
          scen.views) ]

let tests = reader_tests @ system_tests
