(* Self-maintaining view managers: derived auxiliary projections must be
   an invisible storage choice. The derivation unit tests pin the demand
   analysis; the oracle runs whole systems under Selfmaint_vm,
   Complete_vm and the sequential strawman across seeds, columnar
   kernels on/off and domain counts, and requires identical traces; the
   tamper test shows the checker catches corrupted auxiliary state. *)

open Relational
open Query

let case = Helpers.case

module System = Whips.System
module Metrics = Whips.Metrics

(* ---- derivation ---- *)

let rs = Helpers.int_schema [ "A"; "B" ]

let ss = Helpers.int_schema [ "B"; "C" ]

let schemas = function
  | "R" -> rs
  | "S" -> ss
  | r -> invalid_arg r

let aux_for auxes r =
  List.find (fun a -> String.equal a.Selfmaint.Derive.relation r) auxes

let derive_tests =
  [ case "projected join keeps only live + join attributes" (fun () ->
        (* pi_{A,C}(R |><| S): R needs A (output) and B (join key); S
           needs C (output) and B (join key). Both are full here because
           the bases are binary — so widen R to see a real projection. *)
        let wide =
          Helpers.int_schema [ "A"; "B"; "PAD1"; "PAD2" ]
        in
        let schemas = function
          | "R" -> wide
          | "S" -> ss
          | r -> invalid_arg r
        in
        let def =
          Algebra.(project [ "A"; "C" ] (join (base "R") (base "S")))
        in
        let auxes = Selfmaint.Derive.analyze ~schemas def in
        let r = aux_for auxes "R" and s = aux_for auxes "S" in
        Alcotest.(check (list string)) "R live" [ "A"; "B" ] r.live;
        Alcotest.(check bool) "R projected" false r.full;
        Alcotest.(check (list string)) "S live" [ "B"; "C" ] s.live;
        Alcotest.(check bool) "S full" true s.full);
    case "select adds its predicate attributes" (fun () ->
        let wide = Helpers.int_schema [ "A"; "B"; "PAD" ] in
        let schemas = function
          | "R" -> wide
          | r -> invalid_arg r
        in
        let def =
          Algebra.(
            project [ "A" ] (select (Pred.lt "B" (Value.Int 3)) (base "R")))
        in
        let auxes = Selfmaint.Derive.analyze ~schemas def in
        let r = aux_for auxes "R" in
        Alcotest.(check (list string)) "live" [ "A"; "B" ] r.live);
    case "union conservatively demands everything from bare branches"
      (fun () ->
        (* pi_A(R u sigma(R)): the projection above the union does NOT
           narrow the bases — union pushes the full demand into both
           branches, so a bare base under it stays a full replica. A
           Project inside a branch still resets the demand (it
           materializes exactly its names), which is exact. *)
        let wide = Helpers.int_schema [ "A"; "B"; "PAD" ] in
        let schemas = function
          | "R" -> wide
          | r -> invalid_arg r
        in
        let def =
          Algebra.(
            project [ "A" ]
              (union (base "R") (select (Pred.lt "B" (Value.Int 2)) (base "R"))))
        in
        let auxes = Selfmaint.Derive.analyze ~schemas def in
        Alcotest.(check int) "one aux" 1 (List.length auxes);
        Alcotest.(check bool) "full" true (List.hd auxes).full);
    case "demands union across occurrences of a relation" (fun () ->
        let wide = Helpers.int_schema [ "A"; "B"; "PAD" ] in
        let schemas = function
          | "R" -> wide
          | r -> invalid_arg r
        in
        (* One branch needs A, the other B: the shared auxiliary must
           carry both (and not PAD). *)
        let def =
          Algebra.(
            union
              (project [ "A"; "B"; "PAD" ] (base "R"))
              (project [ "A"; "B"; "PAD" ] (base "R")))
        in
        let auxes = Selfmaint.Derive.analyze ~schemas def in
        Alcotest.(check int) "one aux" 1 (List.length auxes);
        Alcotest.(check bool) "full (union)" true (List.hd auxes).full) ]

(* ---- raw manager: AL-for-AL against Complete_vm ---- *)

let drive vm txns engine =
  List.iter (fun txn -> vm.Viewmgr.Vm.receive txn) txns;
  Sim.Engine.run engine

let al_tests =
  [ case "emits the action lists of Complete_vm, list for list" (fun () ->
        let scen = Workload.Scenarios.auxiliary in
        let srcs = Workload.Scenarios.sources scen in
        let initial = Source.Sources.initial srcs in
        let txns = Workload.Scenarios.run_script scen srcs in
        let engine = Sim.Engine.create () in
        let latency ~batch:_ = 0.001 in
        List.iter
          (fun view ->
            let complete_out = ref [] and self_out = ref [] in
            let complete =
              Viewmgr.Complete_vm.create ~engine ~compute_latency:latency
                ~initial ~view
                ~emit:(fun al -> complete_out := al :: !complete_out)
                ()
            in
            let self =
              Selfmaint.Vm.create ~engine ~compute_latency:latency ~initial
                ~view
                ~emit:(fun al -> self_out := al :: !self_out)
                ()
            in
            drive complete txns engine;
            drive self txns engine;
            Alcotest.(check int) "same count"
              (List.length !complete_out) (List.length !self_out);
            List.iter2
              (fun (a : Action_list.t) (b : Action_list.t) ->
                Alcotest.(check int) "same state" a.state b.state;
                match (a.payload, b.payload) with
                | Action_list.Delta da, Action_list.Delta db ->
                  Alcotest.check Helpers.signed_bag "same delta" da db
                | _ -> Alcotest.fail "expected delta payloads")
              !complete_out !self_out)
          scen.views);
    case "auxiliary storage never exceeds the replica cache" (fun () ->
        let scen = Workload.Scenarios.auxiliary in
        let initial =
          Source.Sources.initial (Workload.Scenarios.sources scen)
        in
        List.iter
          (fun view ->
            let plan = Selfmaint.Plan.create ~initial view in
            let s = Selfmaint.Plan.storage plan in
            Alcotest.(check bool) "cells bounded" true
              (s.aux_cells <= s.replica_cells);
            Alcotest.(check bool) "rows bounded" true
              (s.aux_rows <= s.replica_rows))
          scen.views) ]

(* ---- whole-system oracle ----

   For each seed: a generated scenario runs under Selfmaint_vm and under
   Complete_vm with the same config — commits, actions, the simulated
   completion instant and every view's final contents must be identical
   (the managers emit the same action lists with the same timing) — and
   under the sequential strawman, whose final contents are the naive
   ground truth. The grid crosses columnar kernels off/on with domain
   counts 1 and 4. Selfmaint runs must also report zero source
   queries. *)

let final_views (r : System.result) =
  List.map
    (fun v -> System.view_contents r (View.name v))
    r.System.config.System.scenario.Workload.Scenarios.views

let signature (r : System.result) =
  let m = r.System.metrics in
  ( Atomic.get m.Metrics.commits,
    Atomic.get m.Metrics.actions_applied,
    m.Metrics.completed_at,
    final_views r )

let oracle_run seed =
  let rng = Sim.Rng.create (0x5E1F + seed) in
  let scen =
    Workload.Generator.generate
      { Workload.Generator.default with
        seed = 1 + Sim.Rng.int rng 1000;
        n_views = 4;
        n_transactions = 8;
        initial_tuples = 4 }
  in
  let run_seed = Sim.Rng.int rng 10_000 in
  let cfg vm_kind merge_kind domains =
    { (System.default scen) with
      vm_kind;
      merge_kind;
      arrival = System.Poisson 80.0;
      parallel =
        { Parallel.Config.domains; shards = domains; model_overlap = false };
      seed = run_seed }
  in
  List.iter
    (fun columnar ->
      Helpers.with_columnar columnar (fun () ->
          List.iter
            (fun domains ->
              let self =
                System.run (cfg System.Selfmaint_vm System.Auto domains)
              in
              let complete =
                System.run (cfg System.Complete_vm System.Auto domains)
              in
              let naive =
                System.run (cfg System.Selfmaint_vm System.Sequential domains)
              in
              if
                Atomic.get self.metrics.Metrics.source_queries <> 0
              then
                QCheck2.Test.fail_reportf
                  "seed %d: selfmaint issued source queries" seed;
              let c1, a1, t1, v1 = signature self
              and c2, a2, t2, v2 = signature complete in
              if
                not
                  (c1 = c2 && a1 = a2 && t1 = t2
                  && List.for_all2 Bag.equal v1 v2)
              then
                QCheck2.Test.fail_reportf
                  "seed %d (columnar=%b domains=%d): selfmaint trace \
                   diverged from Complete_vm"
                  seed columnar domains;
              if not (List.for_all2 Bag.equal v1 (final_views naive)) then
                QCheck2.Test.fail_reportf
                  "seed %d (columnar=%b domains=%d): diverged from the \
                   sequential strawman"
                  seed columnar domains;
              let v = System.verdict self in
              if not v.complete then
                QCheck2.Test.fail_reportf
                  "seed %d (columnar=%b domains=%d): selfmaint run not \
                   complete"
                  seed columnar domains)
            [ 1; 4 ]))
    [ false; true ];
  true

let oracle_tests =
  [ Helpers.qcheck ~count:12
      "oracle: selfmaint == complete == naive across kernels and domains"
      QCheck2.Gen.(int_range 0 1_000_000)
      oracle_run ]

(* ---- tampered auxiliary state is caught by the checker ---- *)

(* V = R |><| S; the script inserts an R row that joins an existing S
   row, so the true delta probes S's auxiliary. [tamper] corrupts the
   cache before the run (or not, for the control). *)
let tamper_drive tamper =
  let view = View.make "V" Algebra.(join (base "R") (base "S")) in
  let srcs =
    Source.Sources.create
      [ { source = "s1"; relation = "R"; init = Helpers.rel rs [ [ 1; 2 ] ] };
        { source = "s2"; relation = "S"; init = Helpers.rel ss [ [ 2; 3 ] ] } ]
  in
  let initial = Source.Sources.initial srcs in
  let plan = Selfmaint.Plan.create ~initial view in
  let cache = tamper (Selfmaint.Plan.initial_cache plan) in
  let engine = Sim.Engine.create () in
  let out = ref [] in
  let vm =
    Selfmaint.Vm.create ~engine
      ~compute_latency:(fun ~batch:_ -> 0.001)
      ~state:(plan, cache) ~initial ~view
      ~emit:(fun al -> out := !out @ [ al ])
      ()
  in
  let t1 =
    Source.Sources.execute srcs [ Update.insert "R" (Helpers.ints [ 7; 2 ]) ]
  in
  let t2 =
    Source.Sources.execute srcs [ Update.delete "S" (Helpers.ints [ 2; 3 ]) ]
  in
  let txns = [ t1; t2 ] in
  drive vm txns engine;
  let contents =
    List.rev
      (List.fold_left
         (fun (acc : Bag.t list) al ->
           Action_list.apply al (List.hd acc) :: acc)
         [ Relation.contents (View.materialize initial view) ]
         !out)
  in
  Consistency.Checker.check_single_view ~view ~transactions:txns
    ~source_states:(Source.Sources.states srcs) ~contents

let tamper_tests =
  [ case "a tampered auxiliary relation fails the consistency check"
      (fun () ->
        (* Drop S's only row from its auxiliary: the R insert's local
           probe then joins nothing, the emitted delta is empty where
           the truth is not, and no interleaving of source states can
           explain the resulting content history. *)
        let verdict =
          tamper_drive (fun cache ->
              Database.add "S"
                (Relation.create (Database.schema cache "S"))
                cache)
        in
        (* The run is not complete: the insert's view change never
           reached the warehouse. (It can still be strongly consistent —
           the history skips ss_1 but ends on a true state — which is
           exactly the downgrade the MVC ladder prescribes.) *)
        Alcotest.(check bool) "not complete" false verdict.complete);
    case "the untampered plan from the same state is complete" (fun () ->
        let verdict = tamper_drive (fun cache -> cache) in
        Alcotest.(check bool) "complete" true verdict.complete) ]

(* ---- distributed shards ---- *)

let dist_tests =
  [ case "selfmaint shards are trace-identical to replica shards" (fun () ->
        let tenants =
          Workload.Tenants.generate
            { Workload.Tenants.default with tenants = 3; seed = 5 }
        in
        let run selfmaint =
          Dist.System.run
            { (Dist.System.default tenants) with selfmaint; seed = 7 }
        in
        let replica = run false and self = run true in
        Alcotest.(check bool) "not stuck" false self.stuck;
        List.iter2
          (fun (a : Dist.System.shard_result) (b : Dist.System.shard_result) ->
            Alcotest.(check int) "same commits" a.sh_commits b.sh_commits;
            Alcotest.(check int) "same wts" a.sh_wts b.sh_wts;
            List.iter2
              (fun da db -> Alcotest.(check bool) "same state" true
                  (Relational.Database.equal da db))
              (Warehouse.Store.states a.sh_store)
              (Warehouse.Store.states b.sh_store))
          replica.shards self.shards;
        List.iter
          (fun (_, v) ->
            Alcotest.(check bool) "shard complete" true
              v.Consistency.Checker.complete)
          (Dist.System.shard_verdicts self)) ]

let tests = derive_tests @ al_tests @ oracle_tests @ tamper_tests @ dist_tests
