open Whips

let case = Helpers.case

let tests =
  [ case "timeline is off by default" (fun () ->
        let result = System.run (System.default Workload.Scenarios.example1) in
        Alcotest.(check int) "empty" 0 (List.length result.timeline));
    case "timeline records chronologically with all event kinds" (fun () ->
        let result =
          System.run
            { (System.default Workload.Scenarios.paper_views) with
              record_timeline = true;
              seed = 3 }
        in
        let times = List.map fst result.timeline in
        Alcotest.(check bool) "nonempty" true (times <> []);
        Alcotest.(check bool) "sorted" true
          (List.sort compare times = times);
        let has prefix =
          List.exists
            (fun (_, e) ->
              String.length e >= String.length prefix
              && String.sub e 0 (String.length prefix) = prefix)
            result.timeline
        in
        Alcotest.(check bool) "source commits" true (has "source commit");
        Alcotest.(check bool) "integrator" true (has "integrator");
        Alcotest.(check bool) "merge RELs" true (has "merge <- REL");
        Alcotest.(check bool) "merge ALs" true (has "merge <- AL");
        Alcotest.(check bool) "warehouse commits" true (has "warehouse commit"));
    case "timeline records forwarded RELs under via-manager routing"
      (fun () ->
        let result =
          System.run
            { (System.default Workload.Scenarios.paper_views) with
              record_timeline = true;
              rel_routing = System.Via_manager;
              seed = 3 }
        in
        Alcotest.(check bool) "forwarded" true
          (List.exists
             (fun (_, e) ->
               String.length e > 24
               && String.sub e 0 24 = "merge <- forwarded REL_1")
             result.timeline));
    case "metrics throughput" (fun () ->
        let m = Metrics.create () in
        Atomic.set m.Metrics.transactions 10;
        m.Metrics.completed_at <- 2.0;
        Alcotest.(check (float 1e-9)) "5/s" 5.0 (Metrics.throughput m);
        let empty = Metrics.create () in
        Alcotest.(check (float 1e-9)) "0 when instantaneous" 0.0
          (Metrics.throughput empty));
    case "metrics pretty-printer is total" (fun () ->
        let result = System.run (System.default Workload.Scenarios.bank) in
        Alcotest.(check bool) "prints" true
          (String.length (Fmt.str "%a" Metrics.pp result.metrics) > 0));
    case "witness maps every view content to its claimed source state"
      (fun () ->
        let result =
          System.run
            { (System.default Workload.Scenarios.paper_views) with
              vm_kind = System.Batching_vm;
              arrival = System.Poisson 80.0;
              seed = 7 }
        in
        let verdict, witness = System.verdict_with_witness result in
        Alcotest.(check bool) "strong" true verdict.strongly_consistent;
        match witness with
        | None -> Alcotest.fail "expected a witness"
        | Some chain ->
          let states = Warehouse.Store.states result.store in
          Alcotest.(check int) "one entry per warehouse state"
            (List.length states) (List.length chain);
          List.iteri
            (fun j per_view ->
              let ws = List.nth states j in
              List.iter
                (fun (view_name, c) ->
                  let view =
                    List.find
                      (fun v -> Query.View.name v = view_name)
                      Workload.Scenarios.paper_views.views
                  in
                  let expected =
                    Relational.Relation.contents
                      (Query.View.materialize
                         (Source.Sources.state result.sources c)
                         view)
                  in
                  let actual =
                    Relational.Relation.contents
                      (Relational.Database.find ws view_name)
                  in
                  Alcotest.check Helpers.bag
                    (Printf.sprintf "ws%d %s@ss%d" j view_name c)
                    expected actual)
                per_view)
            chain;
          (* Per-view monotonicity of the witness chain. *)
          let by_view name =
            List.map (fun per_view -> List.assoc name per_view) chain
          in
          List.iter
            (fun v ->
              let cs = by_view (Query.View.name v) in
              Alcotest.(check bool)
                (Query.View.name v ^ " monotone")
                true
                (List.sort compare cs = cs))
            Workload.Scenarios.paper_views.views);
    case "no witness for an inconsistent run" (fun () ->
        let result =
          System.run
            { (System.default Workload.Scenarios.paper_views) with
              merge_kind = System.Force_passthrough;
              arrival = System.Poisson 300.0;
              seed = 2 }
        in
        let verdict, witness = System.verdict_with_witness result in
        if not verdict.strongly_consistent then
          Alcotest.(check bool) "no witness" true (witness = None));
    case "default latencies are positive" (fun () ->
        let l = System.default_latencies in
        Alcotest.(check bool) "all positive" true
          (l.message > 0.0 && l.compute > 0.0 && l.commit > 0.0
          && l.query_roundtrip > 0.0 && l.merge > 0.0)) ]
