(* The distributed warehouse: router, union views, global cuts, the
   certified end-to-end runs, and the N=1 oracle (a cross-shard union
   view must serve exactly what a single-shard run — and a direct
   evaluation over the final source state — produces). *)

open Relational

let case = Helpers.case

let tenant_of_name name =
  (* sales_t<k> / hot_t<k> *)
  match String.rindex_opt name 't' with
  | Some i -> int_of_string (String.sub name (i + 1) (String.length name - i - 1))
  | None -> invalid_arg name

let workload ?(tenants = 4) ?(skew = 1.0) ?(n_transactions = 24) ?(seed = 7) () =
  Workload.Tenants.generate
    { Workload.Tenants.default with tenants; skew; n_transactions; seed }

let config ?(shards = 2) ?(seed = 11) w =
  { (Dist.System.default ~shards w) with seed }

(* Ground truth: evaluate every leg over the final source state and
   union the results. *)
let expected_union (r : Dist.System.result) (u : Dist.Union_view.t) =
  let final = Source.Sources.current r.Dist.System.sources in
  let views =
    r.Dist.System.config.Dist.System.workload.Workload.Tenants.scenario
      .Workload.Scenarios.views
  in
  List.fold_left
    (fun acc (_, leg) ->
      let v = List.find (fun v -> Query.View.name v = leg) views in
      Bag.union acc (Relation.contents (Query.View.materialize final v)))
    Bag.empty u.Dist.Union_view.legs

let check_run ?(faulty = false) (r : Dist.System.result) =
  Alcotest.(check bool) "drained" false r.Dist.System.stuck;
  List.iter
    (fun (s, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d complete MVC" s)
        true
        (Consistency.Checker.at_least Consistency.Checker.Complete v))
    (Dist.System.shard_verdicts r);
  let cert = Dist.System.certificate r in
  Alcotest.(check bool)
    (Fmt.str "distributed certificate: %a" Consistency.Checker.pp_distributed
       cert)
    true
    (Consistency.Checker.certified_distributed cert);
  List.iter
    (fun (u : Dist.Union_view.t) ->
      Alcotest.check Helpers.bag
        (u.Dist.Union_view.name ^ " matches direct evaluation")
        (expected_union r u)
        (Dist.System.union_contents r u.Dist.Union_view.name))
    r.Dist.System.unions;
  if faulty then ()

let tests =
  [ case "router assigns by tenant mod shards" (fun () ->
        let router = Dist.Router.create ~shards:2 ~tenant_of:tenant_of_name in
        Alcotest.(check int) "t0 -> shard 0" 0
          (Dist.Router.shard_of_view router "sales_t0");
        Alcotest.(check int) "t3 -> shard 1" 1
          (Dist.Router.shard_of_view router "hot_t3"));
    case "router fans out only to affected shards" (fun () ->
        let router = Dist.Router.create ~shards:3 ~tenant_of:tenant_of_name in
        Alcotest.(check (list (pair int (list string))))
          "tenant-1 update wakes only shard 1"
          [ (1, [ "sales_t1"; "hot_t1" ]) ]
          (Dist.Router.fan_out router [ "sales_t1"; "hot_t1" ]);
        Alcotest.(check (list (pair int (list string))))
          "cross-tenant REL splits by shard"
          [ (0, [ "sales_t0"; "sales_t3" ]); (2, [ "hot_t2" ]) ]
          (Dist.Router.fan_out router [ "sales_t0"; "hot_t2"; "sales_t3" ]));
    case "union view places legs and lists shards" (fun () ->
        let router = Dist.Router.create ~shards:2 ~tenant_of:tenant_of_name in
        let u =
          Dist.Union_view.make ~name:"sales_all"
            ~assignment:(Dist.Router.assignment router)
            [ "sales_t0"; "sales_t1"; "sales_t2" ]
        in
        Alcotest.(check (list (pair int string)))
          "legs sorted by shard, stable within"
          [ (0, "sales_t0"); (0, "sales_t2"); (1, "sales_t1") ]
          u.Dist.Union_view.legs;
        Alcotest.(check (list int)) "shards" [ 0; 1 ] (Dist.Union_view.shards u));
    case "tenant workload is seeded and single-tenant" (fun () ->
        let w1 = workload () and w2 = workload () in
        Alcotest.(check bool) "same seed, same script" true
          (w1.Workload.Tenants.scenario.Workload.Scenarios.script
          = w2.Workload.Tenants.scenario.Workload.Scenarios.script);
        List.iter
          (fun updates ->
            let tenants =
              List.map (fun u -> tenant_of_name u.Update.relation) updates
              |> List.sort_uniq compare
            in
            Alcotest.(check int) "one tenant per transaction" 1
              (List.length tenants))
          w1.Workload.Tenants.scenario.Workload.Scenarios.script);
    case "zipf skew concentrates on low ranks" (fun () ->
        let rng = Sim.Rng.create 5 in
        let counts = Array.make 4 0 in
        for _ = 1 to 2000 do
          let i = Workload.Tenants.zipf rng ~skew:1.5 4 in
          counts.(i) <- counts.(i) + 1
        done;
        Alcotest.(check bool) "rank 0 beats rank 3" true
          (counts.(0) > 3 * counts.(3));
        let rng = Sim.Rng.create 5 in
        for _ = 1 to 100 do
          let i = Workload.Tenants.zipf rng ~skew:0.0 7 in
          Alcotest.(check bool) "in range" true (i >= 0 && i < 7)
        done);
    case "legs are union-compatible across tenants" (fun () ->
        let w = workload () in
        let sources = Workload.Scenarios.sources w.Workload.Tenants.scenario in
        let db = Source.Sources.initial sources in
        List.iter
          (fun (_, legs) ->
            let schemas =
              List.map
                (fun leg ->
                  let v =
                    List.find
                      (fun v -> Query.View.name v = leg)
                      w.Workload.Tenants.scenario.Workload.Scenarios.views
                  in
                  Relation.schema (Query.View.materialize db v))
                legs
            in
            match schemas with
            | [] -> Alcotest.fail "no legs"
            | s :: rest ->
              List.iter
                (fun s' -> Alcotest.check Helpers.schema "same schema" s s')
                rest)
          w.Workload.Tenants.unions);
    case "two shards: certified, complete per shard, oracle-exact" (fun () ->
        check_run (Dist.System.run (config ~shards:2 (workload ()))));
    case "four shards with skew: certified and oracle-exact" (fun () ->
        check_run
          (Dist.System.run (config ~shards:4 (workload ~tenants:8 ~skew:1.5 ()))));
    case "single-tenant updates route to exactly one shard" (fun () ->
        let r = Dist.System.run (config ~shards:4 (workload ~tenants:8 ())) in
        Alcotest.(check bool) "mean fanout = 1" true
          (Sim.Stats.Summary.mean
             r.Dist.System.metrics.Whips.Metrics.routed_shards
          = 1.0));
    case "cross-shard contents match the N=1 oracle" (fun () ->
        let w = workload ~tenants:6 ~n_transactions:30 () in
        let r1 = Dist.System.run (config ~shards:1 w) in
        let r3 = Dist.System.run (config ~shards:3 w) in
        List.iter
          (fun (u : Dist.Union_view.t) ->
            Alcotest.check Helpers.bag u.Dist.Union_view.name
              (Dist.System.union_contents r1 u.Dist.Union_view.name)
              (Dist.System.union_contents r3 u.Dist.Union_view.name))
          r3.Dist.System.unions);
    case "fault plan + ARQ: still certified and oracle-exact" (fun () ->
        let w = workload ~tenants:4 ~n_transactions:20 () in
        let plan =
          Workload.Fault_plan.union
            [ Workload.Fault_plan.random ~drop:0.15 ~duplicate:0.1
                "integ->shard*";
              Workload.Fault_plan.random ~drop:0.15 "*->merge0";
              Workload.Fault_plan.random ~drop:0.15 "*->merge1";
              Workload.Fault_plan.nth ~channel:"integ->shard0" ~nth:3
                Workload.Fault_plan.Drop ]
        in
        let cfg =
          { (config ~shards:2 w) with
            fault_plan = plan;
            reliability = Whips.System.Acked Sim.Reliable.default_params }
        in
        let r = Dist.System.run cfg in
        Alcotest.(check bool) "faults actually fired" true
          (Atomic.get r.Dist.System.metrics.Whips.Metrics.msgs_dropped > 0);
        check_run ~faulty:true r);
    case "durable shards log every commit write-ahead" (fun () ->
        let r =
          Dist.System.run
            { (config ~shards:2 (workload ())) with durable = true }
        in
        List.iter
          (fun (sh : Dist.System.shard_result) ->
            Alcotest.(check int)
              (Printf.sprintf "shard %d WAL covers its commits"
                 sh.Dist.System.sh_id)
              sh.Dist.System.sh_commits sh.Dist.System.sh_wal_appends)
          r.Dist.System.shards);
    case "certificate rejects tampered reads" (fun () ->
        let r = Dist.System.run (config ~shards:2 (workload ())) in
        let states =
          List.map
            (fun (sh : Dist.System.shard_result) ->
              Warehouse.Store.states sh.Dist.System.sh_store)
            r.Dist.System.shards
        in
        let genuine = List.hd r.Dist.System.reads in
        let tampered_result =
          { genuine with
            Consistency.Checker.cr_result =
              Bag.add
                (Tuple.ints [ 99; 99; 99 ])
                genuine.Consistency.Checker.cr_result }
        in
        let c =
          Consistency.Checker.certify_distributed ~shard_states:states
            ~reads:[ tampered_result ]
        in
        Alcotest.(check bool) "forged contents caught" false
          c.Consistency.Checker.cut_exact;
        let dup_shard =
          { genuine with
            Consistency.Checker.cr_vector =
              (match genuine.Consistency.Checker.cr_vector with
              | (s, v) :: rest -> (s, v) :: (s, v + 1) :: rest
              | [] -> []) }
        in
        let c =
          Consistency.Checker.certify_distributed ~shard_states:states
            ~reads:[ dup_shard ]
        in
        Alcotest.(check bool) "shard observed twice caught" false
          c.Consistency.Checker.cut_complete;
        let out_of_range =
          { genuine with
            Consistency.Checker.cr_vector =
              List.map
                (fun (s, _) -> (s, 100000))
                genuine.Consistency.Checker.cr_vector }
        in
        let c =
          Consistency.Checker.certify_distributed ~shard_states:states
            ~reads:[ out_of_range ]
        in
        Alcotest.(check bool) "unrecorded version caught" false
          c.Consistency.Checker.cut_bounded;
        (* A session whose second read moves a shard backwards. *)
        let advanced =
          { genuine with
            Consistency.Checker.cr_vector =
              List.map
                (fun (s, v) -> (s, v + 1))
                genuine.Consistency.Checker.cr_vector;
            cr_result = Bag.empty }
        in
        let c =
          Consistency.Checker.certify_distributed ~shard_states:states
            ~reads:[ advanced; genuine ]
        in
        Alcotest.(check bool) "time travel caught" false
          c.Consistency.Checker.cut_monotonic);
    Helpers.qcheck ~count:12 "qcheck: N-shard union == N=1 oracle, columnar x faults"
      QCheck2.Gen.(
        tup5 (int_range 0 1000) (int_range 2 6) (int_range 2 5) bool bool)
      (fun (seed, tenants, shards, columnar, faulty) ->
        Helpers.with_columnar columnar (fun () ->
            let w = workload ~tenants ~n_transactions:16 ~seed () in
            let base = { (config ~shards w) with seed = seed + 1 } in
            let cfg =
              if faulty then
                { base with
                  fault_plan =
                    Workload.Fault_plan.random ~drop:0.1 ~duplicate:0.05
                      "integ->shard*";
                  reliability =
                    Whips.System.Acked Sim.Reliable.default_params }
              else base
            in
            let r = Dist.System.run cfg in
            let r1 = Dist.System.run { cfg with shards = 1 } in
            (not r.Dist.System.stuck)
            && Consistency.Checker.certified_distributed
                 (Dist.System.certificate r)
            && List.for_all
                 (fun (u : Dist.Union_view.t) ->
                   let name = u.Dist.Union_view.name in
                   Bag.equal
                     (Dist.System.union_contents r name)
                     (Dist.System.union_contents r1 name)
                   && Bag.equal (Dist.System.union_contents r name)
                        (expected_union r u))
                 r.Dist.System.unions)) ]
